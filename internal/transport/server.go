package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/fedzkt/fedzkt/internal/codec"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/fedzkt"
	"github.com/fedzkt/fedzkt/internal/model"
	"github.com/fedzkt/fedzkt/internal/partition"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// ServerConfig configures a networked FedZKT server.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7700"; port 0 picks
	// an ephemeral port, readable via Server.Addr).
	Addr string
	// NumDevices is how many device registrations to wait for before
	// starting round 1.
	NumDevices int
	// Fed is the FedZKT algorithm configuration.
	Fed fedzkt.Config
	// DatasetName picks one of the named synthetic datasets.
	DatasetName string
	// Sizes are the per-class sample counts.
	Sizes data.Sizes
	// IOTimeout bounds each read or write on a device connection.
	IOTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.NumDevices == 0 {
		c.NumDevices = 2
	}
	if c.DatasetName == "" {
		c.DatasetName = "synthmnist"
	}
	if c.Sizes == (data.Sizes{}) {
		c.Sizes = data.DefaultSizes
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 2 * time.Minute
	}
	return c
}

// Server runs the federated round loop over real network connections,
// reusing the same fedzkt.Server core as the in-process simulator.
type Server struct {
	cfg  ServerConfig
	ds   *data.Dataset
	core *fedzkt.Server
	ln   net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

// NewServer builds the server and starts listening; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	ds, ok := data.ByName(cfg.DatasetName, cfg.Sizes, cfg.Fed.Seed)
	if !ok {
		return nil, fmt.Errorf("transport: unknown dataset %q", cfg.DatasetName)
	}
	core, err := fedzkt.NewServer(cfg.Fed, model.Shape{C: ds.C, H: ds.H, W: ds.W}, ds.Classes)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	return &Server{cfg: cfg, ds: ds, core: core, ln: ln}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all device connections.
func (s *Server) Close() {
	_ = s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
}

// Run accepts cfg.NumDevices registrations, executes the full round loop,
// and returns the per-round history. It closes all connections on return.
// ctx cancellation aborts the accept loop and the round loop.
func (s *Server) Run(ctx context.Context) (fed.History, error) {
	defer s.Close()

	stop := context.AfterFunc(ctx, func() { _ = s.ln.Close() })
	defer stop()

	cfg := s.cfg.withDefaults()
	fedCfg := s.core.Config()

	// Deterministic shard assignment, mirroring the simulator.
	shards := partition.IID(s.ds.NumTrain(), cfg.NumDevices, tensor.NewRand(fedCfg.Seed+21))

	// Registration: Hello → Welcome(+assignment) → InitState.
	for i := 0; i < cfg.NumDevices; i++ {
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("transport: accept cancelled: %w", ctx.Err())
			}
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		s.conns = append(s.conns, conn)
		s.mu.Unlock()
		if err := s.register(conn, i, shards[i]); err != nil {
			return nil, err
		}
	}

	// Round loop.
	hist := make(fed.History, 0, fedCfg.Rounds)
	roundRNG := tensor.NewRand(fedCfg.Seed + 99)
	for round := 1; round <= fedCfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return hist, fmt.Errorf("transport: cancelled at round %d: %w", round, err)
		}
		start := time.Now()
		m := fed.RoundMetrics{Round: round}
		active := fed.SampleActive(cfg.NumDevices, fedCfg.ActiveFraction, roundRNG)
		m.Active = active

		// Kick off local training on the active devices.
		for _, id := range active {
			if err := s.send(id, &Message{Type: MsgTrainRequest, Round: round, DeviceID: id}); err != nil {
				return hist, err
			}
		}
		// Collect uploads: codec containers absorbed straight into the
		// replica slots (under a quantised codec the validated bytes are
		// adopted verbatim). Real network traffic is accounted by measured
		// payload length, container overhead included.
		for _, id := range active {
			up, err := s.recv(id, MsgUpload)
			if err != nil {
				return hist, fmt.Errorf("transport: upload from device %d: %w", id, err)
			}
			if err := s.core.AbsorbPayload(id, up.Payload); err != nil {
				return hist, err
			}
			m.BytesUp += int64(len(up.Payload))
		}

		// Server-side distillation.
		gn, err := s.core.Distill(ctx, round)
		if err != nil {
			return hist, err
		}
		m.InputGradNorm = gn

		// Ship the distilled parameters back to the active devices, in the
		// codec's wire form (quantised slots are already the payload).
		for _, id := range active {
			payload, _, err := s.core.ReplicaPayload(id)
			if err != nil {
				return hist, err
			}
			if err := s.send(id, &Message{Type: MsgDownload, Round: round, DeviceID: id, Payload: payload}); err != nil {
				return hist, err
			}
			m.BytesDown += int64(len(payload))
		}

		m.GlobalAcc = s.core.EvaluateGlobal(s.ds)
		m.Elapsed = time.Since(start)
		hist = append(hist, m)
	}

	// Graceful shutdown.
	for id := 0; id < cfg.NumDevices; id++ {
		_ = s.send(id, &Message{Type: MsgDone, DeviceID: id})
	}
	return hist, nil
}

// register performs the three-way registration handshake on conn.
func (s *Server) register(conn net.Conn, id int, shard []int) error {
	cfg := s.cfg
	fedCfg := s.core.Config()
	if err := conn.SetDeadline(time.Now().Add(cfg.IOTimeout)); err != nil {
		return fmt.Errorf("transport: deadline: %w", err)
	}
	hello, err := expect(conn, MsgHello)
	if err != nil {
		return fmt.Errorf("transport: registration of device %d: %w", id, err)
	}
	assignment, err := EncodeAssignment(&Assignment{
		DatasetName: cfg.DatasetName,
		Sizes:       cfg.Sizes,
		DataSeed:    fedCfg.Seed,
		Indices:     shard,
		Local: fed.LocalConfig{
			Epochs:      fedCfg.LocalEpochs,
			BatchSize:   fedCfg.BatchSize,
			LR:          fedCfg.DeviceLR,
			Momentum:    fedCfg.Momentum,
			WeightDecay: fedCfg.WeightDecay,
			ProxMu:      fedCfg.ProxMu,
		},
		Rounds:     fedCfg.Rounds,
		ModelSeed:  fedCfg.Seed + uint64(1000+id),
		StateCodec: s.core.Codec().Name(),
	})
	if err != nil {
		return err
	}
	if err := WriteMessage(conn, &Message{Type: MsgWelcome, DeviceID: id, Payload: assignment}); err != nil {
		return err
	}
	init, err := expect(conn, MsgInitState)
	if err != nil {
		return fmt.Errorf("transport: init state of device %d: %w", id, err)
	}
	sd, err := codec.Decode(init.Payload)
	if err != nil {
		return err
	}
	got, err := s.core.Register(hello.Arch, sd)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("transport: device id mismatch: %d != %d", got, id)
	}
	return nil
}

func (s *Server) conn(id int) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.conns) {
		return nil, fmt.Errorf("transport: no connection for device %d", id)
	}
	return s.conns[id], nil
}

func (s *Server) send(id int, m *Message) error {
	conn, err := s.conn(id)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		return fmt.Errorf("transport: deadline: %w", err)
	}
	return WriteMessage(conn, m)
}

func (s *Server) recv(id int, want MsgType) (*Message, error) {
	conn, err := s.conn(id)
	if err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		return nil, fmt.Errorf("transport: deadline: %w", err)
	}
	return expect(conn, want)
}
