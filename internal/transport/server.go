package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/fedzkt/fedzkt/internal/codec"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/fedzkt"
	"github.com/fedzkt/fedzkt/internal/model"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/obs"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// ServerConfig configures a networked FedZKT server.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7700"; port 0 picks
	// an ephemeral port, readable via Server.Addr).
	Addr string
	// NumDevices is how many device registrations to wait for before
	// starting round 1.
	NumDevices int
	// Fed is the FedZKT algorithm configuration.
	Fed fedzkt.Config
	// DatasetName picks one of the named synthetic datasets.
	DatasetName string
	// Sizes are the per-class sample counts.
	Sizes data.Sizes
	// Partition selects the data-partition regime, matching the
	// experiment runner's vocabulary: "iid" (the "" default),
	// "quantity:<classes-per-device>", or "dirichlet:<beta>". Distributed
	// runs therefore shard exactly like simulator runs with the same
	// config.
	Partition string
	// IOTimeout bounds each active transfer (a registration handshake
	// read, any write) on a device connection. It does NOT bound how long
	// a registered device may sit idle between rounds: idle connections
	// are read without a deadline, so a device that is not sampled for
	// many rounds, or waits out a long server distillation phase, never
	// trips a spurious timeout.
	IOTimeout time.Duration
	// MinUploads is the round quorum: the minimum number of active-device
	// uploads a round needs before the server may distill without the
	// rest. 0 (the default) keeps the strict legacy contract — every
	// active device must upload, and a round that cannot complete within
	// UploadDeadline aborts the run.
	MinUploads int
	// UploadDeadline bounds each round's upload collection. When it
	// expires, the round proceeds if at least MinUploads uploads arrived
	// (quorum mode) and aborts otherwise. 0 defaults to IOTimeout.
	UploadDeadline time.Duration
	// StalenessBound is how many rounds late an upload may arrive and
	// still be absorbed into the next teacher window (via the server's
	// replica-absorb path — the same bounded-staleness contract the
	// pipelined engine defines). 0 drops every late upload; late and
	// dropped uploads are acknowledged either way so devices can clear
	// their replay buffers.
	StalenessBound int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.NumDevices == 0 {
		c.NumDevices = 2
	}
	if c.DatasetName == "" {
		c.DatasetName = "synthmnist"
	}
	if c.Sizes == (data.Sizes{}) {
		c.Sizes = data.DefaultSizes
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 2 * time.Minute
	}
	if c.UploadDeadline == 0 {
		c.UploadDeadline = c.IOTimeout
	}
	return c
}

// Server runs the federated round loop over real network connections,
// reusing the same fedzkt.Server core as the in-process simulator. Each
// device is a session that survives connection losses: connections carry
// a reader/writer goroutine pair feeding a central round loop, and a
// device that reconnects with its resume token re-joins mid-round
// instead of being dropped.
type Server struct {
	cfg    ServerConfig
	ds     *data.Dataset
	core   *fedzkt.Server
	ln     net.Listener
	key    []byte
	shards [][]int

	// events feeds every connection's reader (messages, attach/detach
	// notifications) into the central round loop.
	events chan inbound
	// regProgress signals each completed core registration; fatal carries
	// the first registration-phase failure.
	regProgress chan struct{}
	fatal       chan error

	mu         sync.Mutex
	sessions   []*session
	nextID     int
	installed  int
	pending    map[int]pendingInstall
	conns      []net.Conn
	finalStats []SessionStats
}

// pendingInstall buffers a completed registration handshake until every
// lower device id has been installed into the core, so replica ids always
// equal the transport's Hello-order ids even though handshakes run
// concurrently.
type pendingInstall struct {
	arch   string
	sd     nn.StateDict
	weight int
}

// NewServer builds the server and starts listening; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	ds, ok := data.ByName(cfg.DatasetName, cfg.Sizes, cfg.Fed.Seed)
	if !ok {
		return nil, fmt.Errorf("transport: unknown dataset %q", cfg.DatasetName)
	}
	core, err := fedzkt.NewServer(cfg.Fed, model.Shape{C: ds.C, H: ds.H, W: ds.W}, ds.Classes)
	if err != nil {
		return nil, err
	}
	// Deterministic shard assignment, mirroring the simulator.
	shards, err := shardsFor(ds, cfg.NumDevices, cfg.Partition, core.Config().Seed)
	if err != nil {
		return nil, err
	}
	key, err := newResumeKey()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	srv := &Server{
		cfg:         cfg,
		ds:          ds,
		core:        core,
		ln:          ln,
		key:         key,
		shards:      shards,
		events:      make(chan inbound, 4*cfg.NumDevices+16),
		regProgress: make(chan struct{}, cfg.NumDevices),
		fatal:       make(chan error, 1),
		pending:     make(map[int]pendingInstall),
	}
	srv.RegisterMetrics(obs.Default())
	return srv, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and all device connections.
func (s *Server) Close() {
	_ = s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
}

// SessionStats returns the per-device session statistics: resume counts,
// upload outcomes (absorbed/late/duplicate) and measured wire traffic.
// After Run returns it reports the run-final snapshot.
func (s *Server) SessionStats() []SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalStats != nil {
		return append([]SessionStats(nil), s.finalStats...)
	}
	out := make([]SessionStats, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess.stats())
	}
	return out
}

// stats snapshots one session's statistics.
func (s *session) stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		ID: s.id, Arch: s.arch,
		Resumes:  s.resumes,
		Absorbed: s.absorbed, Late: s.late, Duplicates: s.duplicates,
		BytesUp: s.meter.up.Load(), BytesDown: s.meter.down.Load(),
	}
}

// trackConn records a connection for Close.
func (s *Server) trackConn(conn net.Conn) {
	s.mu.Lock()
	s.conns = append(s.conns, conn)
	s.mu.Unlock()
}

// registrationComplete reports whether all NumDevices replicas are
// installed in the core.
func (s *Server) registrationComplete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installed == s.cfg.NumDevices
}

// reportFatal delivers the first registration-phase failure to Run.
func (s *Server) reportFatal(err error) {
	select {
	case s.fatal <- err:
	default:
	}
}

// Run accepts cfg.NumDevices registrations, executes the full round loop,
// and returns the per-round history. It closes all connections on return.
// ctx cancellation aborts the registration wait and the round loop.
func (s *Server) Run(ctx context.Context) (fed.History, error) {
	defer s.Close()
	stop := context.AfterFunc(ctx, s.Close)
	defer stop()

	// Accept loop: runs for the server's whole life, serving both fresh
	// registrations and mid-round session resumes. Each connection gets
	// its own handshake goroutine, so one client that connects and stalls
	// cannot head-of-line block the others.
	go func() {
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return
			}
			s.trackConn(conn)
			go s.handleConn(conn)
		}
	}()

	if err := s.awaitRegistration(ctx); err != nil {
		return nil, err
	}
	return s.roundLoop(ctx)
}

// awaitRegistration blocks until all NumDevices devices are registered,
// a registration fails, registration stalls for IOTimeout with no
// progress, or ctx is cancelled.
func (s *Server) awaitRegistration(ctx context.Context) error {
	timer := time.NewTimer(s.cfg.IOTimeout)
	defer timer.Stop()
	for !s.registrationComplete() {
		select {
		case <-s.regProgress:
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(s.cfg.IOTimeout)
		case err := <-s.fatal:
			return err
		case <-ctx.Done():
			return fmt.Errorf("transport: accept cancelled: %w", ctx.Err())
		case <-timer.C:
			s.mu.Lock()
			n := s.installed
			s.mu.Unlock()
			return fmt.Errorf("transport: registration timed out with %d/%d devices", n, s.cfg.NumDevices)
		}
	}
	return nil
}

// handleConn runs one connection's handshake: a MsgHello registers a new
// device session, a MsgResume re-attaches an existing one. Registration-
// phase failures are fatal to the run (rounds cannot start without all
// devices); failures after registration only drop the offending
// connection.
func (s *Server) handleConn(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(s.cfg.IOTimeout))
	var handshake meter
	mc := &meteredConn{Conn: conn, m: &handshake}
	first, err := ReadMessage(mc)
	if err != nil {
		s.handshakeFail(conn, fmt.Errorf("transport: handshake: %w", err))
		return
	}
	switch first.Type {
	case MsgHello:
		s.handleHello(conn, mc, first)
	case MsgResume:
		s.handleResume(conn, mc, first)
	default:
		s.handshakeFail(conn, fmt.Errorf("transport: expected hello or resume, got %v", first.Type))
	}
}

// handshakeFail closes a connection that failed its handshake, aborting
// the whole run if registration is still incomplete.
func (s *Server) handshakeFail(conn net.Conn, err error) {
	_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
	_ = conn.Close()
	if !s.registrationComplete() {
		s.reportFatal(err)
	}
}

// handleHello performs the registration handshake:
// Hello → Welcome(+assignment+token) → InitState. Handshake IO runs
// concurrently across connections; only the in-memory core installs are
// serialised, in device-id order (see pendingInstall).
func (s *Server) handleHello(conn net.Conn, mc *meteredConn, hello *Message) {
	cfg := s.cfg
	fedCfg := s.core.Config()

	s.mu.Lock()
	if s.nextID >= cfg.NumDevices {
		s.mu.Unlock()
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "transport: federation is full"})
		_ = conn.Close()
		return
	}
	id := s.nextID
	s.nextID++
	sess := &session{id: id, arch: hello.Arch, token: resumeToken(s.key, id)}
	s.sessions = append(s.sessions, sess)
	s.mu.Unlock()

	// Fold the Hello's bytes into the session meter and account the rest
	// of the handshake there directly.
	sess.meter.up.Add(mc.m.up.Load())
	sess.meter.down.Add(mc.m.down.Load())
	mc.m = &sess.meter

	fail := func(err error) {
		s.handshakeFail(conn, fmt.Errorf("transport: registration of device %d: %w", id, err))
	}
	assignment, err := EncodeAssignment(&Assignment{
		DatasetName: cfg.DatasetName,
		Sizes:       cfg.Sizes,
		DataSeed:    fedCfg.Seed,
		Indices:     s.shards[id],
		Local: fed.LocalConfig{
			Epochs:      fedCfg.LocalEpochs,
			BatchSize:   fedCfg.BatchSize,
			LR:          fedCfg.DeviceLR,
			Momentum:    fedCfg.Momentum,
			WeightDecay: fedCfg.WeightDecay,
			ProxMu:      fedCfg.ProxMu,
		},
		Rounds:     fedCfg.Rounds,
		ModelSeed:  fedCfg.Seed + uint64(1000+id),
		StateCodec: s.core.Codec().Name(),
	})
	if err != nil {
		fail(err)
		return
	}
	if err := WriteMessage(mc, &Message{Type: MsgWelcome, DeviceID: id, Token: sess.token, Payload: assignment}); err != nil {
		fail(err)
		return
	}
	init, err := expect(mc, MsgInitState)
	if err != nil {
		fail(err)
		return
	}
	sd, err := codec.Decode(init.Payload)
	if err != nil {
		fail(err)
		return
	}
	if err := s.install(id, hello.Arch, sd, len(s.shards[id])); err != nil {
		fail(err)
		return
	}
	_ = conn.SetDeadline(time.Time{})
	tracer().Begin("transport", "session_attach").WithTID(id).End()
	sess.attach(conn, 0, s.events, cfg.IOTimeout)
}

// install queues device id's registration and installs every
// consecutively-ready registration into the core, so core replica ids
// always match transport ids regardless of handshake completion order.
func (s *Server) install(id int, arch string, sd nn.StateDict, weight int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[id] = pendingInstall{arch: arch, sd: sd, weight: weight}
	for {
		p, ok := s.pending[s.installed]
		if !ok {
			return nil
		}
		got, err := s.core.RegisterSized(p.arch, p.sd, p.weight)
		if err != nil {
			return err
		}
		if got != s.installed {
			return fmt.Errorf("transport: device id mismatch: %d != %d", got, s.installed)
		}
		delete(s.pending, s.installed)
		s.installed++
		select {
		case s.regProgress <- struct{}{}:
		default:
		}
	}
}

// handleResume re-attaches a reconnecting device to its session after
// validating the signed resume token. The device's announced pending
// upload round rides along to the round loop, which decides whether the
// current round's train request needs re-sending.
func (s *Server) handleResume(conn net.Conn, mc *meteredConn, resume *Message) {
	id := resume.DeviceID
	s.mu.Lock()
	var sess *session
	if id >= 0 && id < len(s.sessions) {
		sess = s.sessions[id]
	}
	s.mu.Unlock()
	if sess == nil || !checkResumeToken(s.key, id, resume.Token) {
		// An invalid resume is never fatal — the federation's registered
		// sessions are unaffected by a stray or malicious connection.
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "transport: invalid resume token"})
		_ = conn.Close()
		return
	}
	sess.meter.up.Add(mc.m.up.Load())
	sess.meter.down.Add(mc.m.down.Load())
	mc.m = &sess.meter
	if err := WriteMessage(mc, &Message{Type: MsgResumeAck, DeviceID: id}); err != nil {
		_ = conn.Close()
		return
	}
	sess.mu.Lock()
	sess.resumes++
	sess.mu.Unlock()
	_ = conn.SetDeadline(time.Time{})
	tracer().Begin("transport", "session_resume").WithTID(id).WithRound(resume.Round).End()
	sess.attach(conn, resume.Round, s.events, s.cfg.IOTimeout)
}

// roundLoop executes the federated rounds over the session layer: train
// requests fan out through session outboxes, uploads flow back through
// the events channel, and each round closes on a quorum instead of
// all-active-or-abort.
func (s *Server) roundLoop(ctx context.Context) (fed.History, error) {
	cfg := s.cfg
	fedCfg := s.core.Config()

	s.mu.Lock()
	sessions := append([]*session(nil), s.sessions...)
	s.mu.Unlock()

	// After the loop exits (normally or on error), a background drainer
	// keeps the events channel flowing so no reader goroutine stays
	// blocked on a send after its connection dies.
	defer func() {
		go func() {
			for range s.events {
			}
		}()
	}()

	// lastAbsorbed[id] is the highest round whose upload the server has
	// absorbed for the device — the dedup line that makes a replayed
	// upload absorb exactly once.
	lastAbsorbed := make([]int, cfg.NumDevices)
	prevUp := make([]int64, cfg.NumDevices)
	prevDown := make([]int64, cfg.NumDevices)

	hist := make(fed.History, 0, fedCfg.Rounds)
	roundRNG := tensor.NewRand(fedCfg.Seed + 99)
	for round := 1; round <= fedCfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return hist, fmt.Errorf("transport: cancelled at round %d: %w", round, err)
		}
		start := time.Now()
		roundSpan := tracer().Begin("transport", "round").WithRound(round)
		m := fed.RoundMetrics{Round: round}
		active := fed.SampleActive(cfg.NumDevices, fedCfg.ActiveFraction, roundRNG)
		m.Active = active
		isActive := make([]bool, cfg.NumDevices)
		for _, id := range active {
			isActive[id] = true
		}

		// Kick off local training on the active devices. Enqueues to a
		// detached session are dropped; if the device resumes mid-round
		// the attach event below re-sends the request.
		for _, id := range active {
			sessions[id].enqueue(&Message{Type: MsgTrainRequest, Round: round, DeviceID: id})
		}

		// Collect uploads until every active device reported, or the
		// upload deadline expired with at least a quorum in hand. Late
		// uploads from earlier rounds absorb into the next teacher window
		// when they are within the staleness bound; duplicates and
		// overstale uploads are acknowledged and dropped.
		target := len(active)
		quorum := target
		if cfg.MinUploads > 0 && cfg.MinUploads < target {
			quorum = cfg.MinUploads
		}
		uploaded := make([]bool, cfg.NumDevices)
		lateIDs := make([]int, 0)
		got := 0
		deadline := time.NewTimer(cfg.UploadDeadline)
		expired := false
		for got < target && !(expired && got >= quorum) {
			select {
			case ev := <-s.events:
				switch ev.kind {
				case evAttached:
					// A resumed device that has not uploaded for the
					// current round (and is not about to replay it) gets
					// the train request again.
					if isActive[ev.id] && !uploaded[ev.id] && ev.pendingRound != round {
						sessions[ev.id].enqueue(&Message{Type: MsgTrainRequest, Round: round, DeviceID: ev.id})
					}
				case evDetached:
					// The session stays registered; nothing to do until
					// the device resumes or the round closes without it.
					tracer().Begin("transport", "session_detach").WithTID(ev.id).WithRound(round).End()
				case evMessage:
					if ev.msg.Type != MsgUpload {
						continue
					}
					up := ev.msg
					id := ev.id
					switch {
					case up.Round <= lastAbsorbed[id] || up.Round > round:
						// Replayed duplicate of an absorbed round (or
						// nonsense from the future): acknowledge so the
						// device clears its replay buffer, absorb nothing.
						m.DroppedUploads++
						sessions[id].count(&sessions[id].duplicates)
					case up.Round == round && isActive[id]:
						if err := s.core.AbsorbPayload(id, up.Payload); err != nil {
							m.DroppedUploads++
							break
						}
						lastAbsorbed[id] = round
						uploaded[id] = true
						got++
						m.Absorbed++
						sessions[id].count(&sessions[id].absorbed)
					case round-up.Round <= cfg.StalenessBound:
						// A stale upload inside the staleness bound:
						// absorb it so the next distillation's teacher
						// window sees the device's latest work.
						if err := s.core.AbsorbPayload(id, up.Payload); err != nil {
							m.DroppedUploads++
							break
						}
						lastAbsorbed[id] = up.Round
						m.LateAbsorbed++
						sessions[id].count(&sessions[id].late)
						lateIDs = append(lateIDs, id)
					default:
						m.DroppedUploads++
					}
					sessions[id].enqueue(&Message{Type: MsgUploadAck, Round: up.Round, DeviceID: id})
				}
			case <-deadline.C:
				expired = true
				if got < quorum {
					deadline.Stop()
					roundSpan.End()
					return hist, fmt.Errorf("transport: round %d: %d/%d uploads within deadline (quorum %d)", round, got, target, quorum)
				}
			case <-ctx.Done():
				deadline.Stop()
				roundSpan.End()
				return hist, fmt.Errorf("transport: cancelled at round %d: %w", round, ctx.Err())
			}
		}
		deadline.Stop()
		for _, id := range active {
			if !uploaded[id] {
				m.Dropped = append(m.Dropped, id)
			}
		}

		// Server-side distillation.
		gn, err := s.core.Distill(ctx, round)
		if err != nil {
			roundSpan.End()
			return hist, err
		}
		m.InputGradNorm = gn

		// Ship the distilled parameters back to every device whose upload
		// was absorbed this round (fresh or late) and is still attached,
		// in the codec's wire form.
		downloadTo := append([]int(nil), lateIDs...)
		for _, id := range active {
			if uploaded[id] {
				downloadTo = append(downloadTo, id)
			}
		}
		for _, id := range downloadTo {
			if !sessions[id].attached() {
				continue
			}
			payload, _, err := s.core.ReplicaPayload(id)
			if err != nil {
				roundSpan.End()
				return hist, err
			}
			sessions[id].enqueue(&Message{Type: MsgDownload, Round: round, DeviceID: id, Payload: payload})
		}

		m.GlobalAcc = s.core.EvaluateGlobal(s.ds)

		// Round summary to every attached device.
		summary, err := EncodeRoundSummary(&RoundSummary{
			Round: round, Absorbed: m.Absorbed, Late: m.LateAbsorbed,
			Dropped: m.DroppedUploads, GlobalAcc: m.GlobalAcc,
		})
		if err != nil {
			roundSpan.End()
			return hist, err
		}
		for _, sess := range sessions {
			sess.enqueue(&Message{Type: MsgRoundSummary, Round: round, DeviceID: sess.id, Payload: summary})
		}

		// Measured wire accounting: the per-session meters count every
		// byte on the conn — frame prefixes, handshakes, registration and
		// resume traffic included — and the round books the delta since
		// its predecessor (round 1 therefore carries registration).
		for id, sess := range sessions {
			up, down := sess.meter.up.Load(), sess.meter.down.Load()
			m.BytesUp += up - prevUp[id]
			m.BytesDown += down - prevDown[id]
			prevUp[id], prevDown[id] = up, down
		}
		m.Elapsed = time.Since(start)
		roundSpan.End()
		hist = append(hist, m)
	}

	// Graceful shutdown: tell every attached device the federation is
	// over, then give the writers a moment to drain before Close.
	dones := make([]chan struct{}, 0, len(sessions))
	for _, sess := range sessions {
		sess.enqueue(&Message{Type: MsgDone, DeviceID: sess.id})
		if ch := sess.shutdown(); ch != nil {
			dones = append(dones, ch)
		}
	}
	drainDeadline := time.After(2 * time.Second)
drain:
	for _, ch := range dones {
		select {
		case <-ch:
		case <-drainDeadline:
			break drain
		}
	}

	// Fold the shutdown traffic into the final round and freeze the
	// session stats, so SessionStats totals match the history exactly.
	if len(hist) > 0 {
		last := &hist[len(hist)-1]
		for id, sess := range sessions {
			up, down := sess.meter.up.Load(), sess.meter.down.Load()
			last.BytesUp += up - prevUp[id]
			last.BytesDown += down - prevDown[id]
			prevUp[id], prevDown[id] = up, down
		}
	}
	final := make([]SessionStats, 0, len(sessions))
	for _, sess := range sessions {
		final = append(final, sess.stats())
	}
	s.mu.Lock()
	s.finalStats = final
	s.mu.Unlock()
	return hist, nil
}
