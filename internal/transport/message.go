// Package transport implements the wire protocol between a FedZKT server
// and its devices: length-prefixed gob frames over any net.Conn, plus a
// TCP server and device client that run the full Algorithm 1 round loop
// across machine boundaries. The in-process simulator and the networked
// runtime share the same fedzkt.Server core, so the protocol carries
// exactly the payloads the paper describes: architecture announcements
// upstream, on-device parameters in both directions.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types, in the order they normally flow.
const (
	// MsgHello (device→server) announces the device's architecture.
	MsgHello MsgType = iota + 1
	// MsgWelcome (server→device) assigns the device id and its data-shard
	// assignment (the dataset is synthetic and reconstructed locally from
	// the seed, so only indices travel).
	MsgWelcome
	// MsgInitState (device→server) carries the device's initial
	// parameters for replica registration.
	MsgInitState
	// MsgTrainRequest (server→device) starts one local training round.
	MsgTrainRequest
	// MsgUpload (device→server) carries locally trained parameters.
	MsgUpload
	// MsgDownload (server→device) carries the distilled parameters.
	MsgDownload
	// MsgDone (server→device) ends the session.
	MsgDone
	// MsgError (either direction) aborts with a reason.
	MsgError
	// MsgResume (device→server) re-joins an existing session after a
	// disconnect: DeviceID plus the signed Token issued at registration.
	// Round carries the device's pending unacknowledged upload round (0
	// when it has none), so the server knows whether a replay follows.
	MsgResume
	// MsgResumeAck (server→device) confirms a successful session resume.
	MsgResumeAck
	// MsgUploadAck (server→device) acknowledges that the upload for Round
	// has been received (absorbed, or deduplicated/dropped — either way
	// the device may discard its replay buffer for that round).
	MsgUploadAck
	// MsgRoundSummary (server→device) reports how a finished round went:
	// the Payload carries an encoded RoundSummary.
	MsgRoundSummary
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgInitState:
		return "init-state"
	case MsgTrainRequest:
		return "train-request"
	case MsgUpload:
		return "upload"
	case MsgDownload:
		return "download"
	case MsgDone:
		return "done"
	case MsgError:
		return "error"
	case MsgResume:
		return "resume"
	case MsgResumeAck:
		return "resume-ack"
	case MsgUploadAck:
		return "upload-ack"
	case MsgRoundSummary:
		return "round-summary"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is the protocol envelope.
type Message struct {
	Type     MsgType
	Round    int
	DeviceID int
	Arch     string
	// Reason carries the error description for MsgError.
	Reason string
	// Token carries the session resume token: issued by the server in
	// MsgWelcome, presented back by the device in MsgResume.
	Token []byte
	// Payload carries a state payload in the codec container format
	// (MsgInitState, MsgUpload, MsgDownload), an encoded Assignment
	// (MsgWelcome), or an encoded RoundSummary (MsgRoundSummary). State
	// containers are self-describing, so the receiver never needs
	// out-of-band dtype knowledge.
	Payload []byte
}

// RoundSummary is the per-round report the server broadcasts to attached
// devices after each round completes (MsgRoundSummary).
type RoundSummary struct {
	// Round is the 1-based round the summary describes.
	Round int
	// Absorbed counts fresh current-round uploads absorbed this round.
	Absorbed int
	// Late counts stale uploads (from earlier rounds, within the
	// staleness bound) absorbed into the next teacher window this round.
	Late int
	// Dropped counts uploads discarded this round: staler than the bound,
	// or duplicates of rounds already absorbed.
	Dropped int
	// GlobalAcc is the server global model's test accuracy after the
	// round's distillation.
	GlobalAcc float64
}

// EncodeRoundSummary serialises a RoundSummary for MsgRoundSummary.
func EncodeRoundSummary(s *RoundSummary) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("transport: encoding round summary: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRoundSummary parses a MsgRoundSummary payload.
func DecodeRoundSummary(b []byte) (*RoundSummary, error) {
	var s RoundSummary
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("transport: decoding round summary: %w", err)
	}
	return &s, nil
}

// Assignment tells a device how to reconstruct its local view of the
// experiment: the synthetic dataset spec, its private shard, and the local
// training configuration.
type Assignment struct {
	DatasetName string
	Sizes       data.Sizes
	DataSeed    uint64
	Indices     []int
	Local       fed.LocalConfig
	Rounds      int
	// ModelSeed seeds the device's model initialisation so server replica
	// and device start identically.
	ModelSeed uint64
	// StateCodec names the state codec the federation runs with; the
	// device encodes its uploads with it so the traffic savings are real
	// on the uplink too. Downloads are self-describing containers either
	// way. An empty value selects the dense "float64" identity codec.
	StateCodec string
}

// EncodeAssignment serialises an Assignment for MsgWelcome.
func EncodeAssignment(a *Assignment) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, fmt.Errorf("transport: encoding assignment: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAssignment parses a MsgWelcome payload.
func DecodeAssignment(b []byte) (*Assignment, error) {
	var a Assignment
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&a); err != nil {
		return nil, fmt.Errorf("transport: decoding assignment: %w", err)
	}
	return &a, nil
}

// DefaultMaxMessage bounds a frame to 64 MiB, far above any model payload
// in this repository but small enough to fail fast on corrupt prefixes.
const DefaultMaxMessage = 64 << 20

// ErrMessageTooLarge reports a frame exceeding the size limit.
var ErrMessageTooLarge = errors.New("transport: message exceeds size limit")

// WriteMessage writes one length-prefixed gob frame.
func WriteMessage(w io.Writer, m *Message) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return fmt.Errorf("transport: encoding %v message: %w", m.Type, err)
	}
	if body.Len() > DefaultMaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrMessageTooLarge, body.Len())
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(body.Len()))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("transport: writing frame prefix: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("transport: writing frame body: %w", err)
	}
	return nil
}

// ReadMessage reads one length-prefixed gob frame, rejecting frames larger
// than DefaultMaxMessage.
func ReadMessage(r io.Reader) (*Message, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, fmt.Errorf("transport: reading frame prefix: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > DefaultMaxMessage {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("transport: reading frame body: %w", err)
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return nil, fmt.Errorf("transport: decoding frame: %w", err)
	}
	return &m, nil
}

// expect reads a message and verifies its type, surfacing MsgError bodies
// as errors.
func expect(r io.Reader, want MsgType) (*Message, error) {
	m, err := ReadMessage(r)
	if err != nil {
		return nil, err
	}
	if m.Type == MsgError {
		return nil, fmt.Errorf("transport: peer error: %s", m.Reason)
	}
	if m.Type != want {
		return nil, fmt.Errorf("transport: expected %v, got %v", want, m.Type)
	}
	return m, nil
}
