package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fedzkt"
)

// failureServer builds a 1-device server for failure-injection tests.
func failureServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:        "127.0.0.1:0",
		NumDevices:  1,
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 4, TestPerClass: 2},
		Fed: fedzkt.Config{
			Rounds: 1, LocalEpochs: 1, DistillIters: 2, DistillBatch: 8,
			BatchSize: 4, ZDim: 8, Seed: 1,
		},
		IOTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerRejectsBogusArchitecture: a device announcing an unknown
// architecture must fail the run with a clear error, not hang.
func TestServerRejectsBogusArchitecture(t *testing.T) {
	srv := failureServer(t)
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Type: MsgHello, Arch: "bogus-arch"}); err != nil {
		t.Fatal(err)
	}
	// The server sends Welcome first (arch is validated at registration),
	// so play along until InitState — send garbage state instead.
	if _, err := expect(conn, MsgWelcome); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Type: MsgInitState, Payload: []byte("junk")}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server accepted a corrupt registration")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on corrupt registration")
	}
}

// TestServerHandlesWrongMessageType: a device that skips the handshake
// must produce a protocol error.
func TestServerHandlesWrongMessageType(t *testing.T) {
	srv := failureServer(t)
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Type: MsgUpload, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "expected hello") {
			t.Fatalf("err = %v, want protocol error mentioning hello", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on protocol violation")
	}
}

// TestServerTimesOutSilentDevice: a device that connects and goes silent
// must trip the IO deadline rather than stall the federation forever.
func TestServerTimesOutSilentDevice(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:        "127.0.0.1:0",
		NumDevices:  1,
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 4, TestPerClass: 2},
		Fed:         fedzkt.Config{Rounds: 1, Seed: 1},
		IOTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server completed despite a silent device")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not time out a silent device")
	}
}

// TestDeviceSurvivesServerCrash: if the server disappears mid-session the
// device returns an error instead of hanging.
func TestDeviceSurvivesServerCrash(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the Hello then slam the connection shut.
		_, _ = ReadMessage(conn)
		_ = conn.Close()
		_ = ln.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := RunDevice(ctx, DeviceConfig{Addr: ln.Addr().String(), Arch: "mlp", IOTimeout: 2 * time.Second}); err == nil {
		t.Fatal("device must error when the server vanishes")
	}
}
