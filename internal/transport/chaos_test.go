package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/fedzkt/fedzkt/internal/chaos"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/fedzkt"
)

// chaosProxy sits between a device and the server, forwarding bytes and
// injecting a deterministic mid-round disconnect: the first connection is
// cut when the device sends its cutAfter-th frame (0 = never). Later
// connections pass through untouched, so a reconnecting device resumes
// through the same address.
type chaosProxy struct {
	t      *testing.T
	ln     net.Listener
	target string

	mu       sync.Mutex
	cutAfter int
	first    bool
	conns    []net.Conn
}

func newChaosProxy(t *testing.T, target string, cutAfter int) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{t: t, ln: ln, target: target, cutAfter: cutAfter, first: true}
	go p.acceptLoop()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) Close() {
	_ = p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		_ = c.Close()
	}
}

func (p *chaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, server)
		cut := 0
		if p.first {
			cut = p.cutAfter
			p.first = false
		}
		p.mu.Unlock()
		go p.pipeUp(client, server, cut)
		go func() { // server → device: plain copy
			_, _ = io.Copy(client, server)
			_ = client.Close()
		}()
	}
}

// pipeUp forwards device→server traffic frame by frame; after forwarding
// cut frames (if cut > 0) it slams both legs shut, simulating a device
// dying mid-round.
func (p *chaosProxy) pipeUp(client, server net.Conn, cut int) {
	defer func() { _ = client.Close(); _ = server.Close() }()
	frames := 0
	var prefix [4]byte
	for {
		if _, err := io.ReadFull(client, prefix[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n > DefaultMaxMessage {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(client, body); err != nil {
			return
		}
		if _, err := server.Write(prefix[:]); err != nil {
			return
		}
		if _, err := server.Write(body); err != nil {
			return
		}
		frames++
		if cut > 0 && frames >= cut {
			return
		}
	}
}

// chaosServerConfig builds a fast n-device federation with quorum rounds
// and a staleness window for late uploads.
func chaosServerConfig(n, rounds, minUploads, staleness int, uploadDeadline time.Duration) ServerConfig {
	return ServerConfig{
		Addr:        "127.0.0.1:0",
		NumDevices:  n,
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 6, TestPerClass: 2},
		Fed: fedzkt.Config{
			Rounds: rounds, LocalEpochs: 1, DistillIters: 2, StudentSteps: 1,
			DistillBatch: 8, BatchSize: 4, ZDim: 8,
			DeviceLR: 0.05, ServerLR: 0.05, GenLR: 3e-4, Momentum: 0.9, Seed: 7,
		},
		IOTimeout:      30 * time.Second,
		MinUploads:     minUploads,
		UploadDeadline: uploadDeadline,
		StalenessBound: staleness,
	}
}

// TestChaosQuorumResume is the acceptance chaos scenario: 8 devices over
// loopback, 2 killed mid-round by frame-cut proxies (one permanently dead,
// one reconnecting with its resume token), plus a third cut after its
// upload so its replay exercises the exactly-once dedup. All rounds must
// complete on a quorum, the resumed devices keep their ids, and the
// history books absorbed/late/dropped per round.
func TestChaosQuorumResume(t *testing.T) {
	const (
		devices = 8
		rounds  = 3
		quorum  = 6
	)
	srv, err := NewServer(chaosServerConfig(devices, rounds, quorum, 2, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	// Device 'perm' uploads round 1 (3rd frame: hello, init-state, upload)
	// and dies for good (no reconnect). Device 'rejoin' is cut right after
	// registration (2nd frame), so it resumes and picks up round 1's train
	// request via the attach-resend path. Device 'replay' is cut right
	// after its round-1 upload passes, so its ack is (likely) lost and the
	// resume replays an already-absorbed round — which must absorb exactly
	// once either way.
	permProxy := newChaosProxy(t, srv.Addr(), 3)
	rejoinProxy := newChaosProxy(t, srv.Addr(), 2)
	replayProxy := newChaosProxy(t, srv.Addr(), 3)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, devices)
	run := func(i int, addr string, reconnect bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = RunDevice(ctx, DeviceConfig{
				Addr: addr, Arch: "mlp", IOTimeout: 20 * time.Second,
				Reconnect: reconnect, ReconnectBase: 50 * time.Millisecond,
			})
		}()
	}
	run(0, permProxy.Addr(), false)
	run(1, rejoinProxy.Addr(), true)
	run(2, replayProxy.Addr(), true)
	for i := 3; i < devices; i++ {
		run(i, srv.Addr(), true)
	}

	hist, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(hist) != rounds {
		t.Fatalf("history length %d, want %d", len(hist), rounds)
	}

	// The permanently dead device must error out; everyone else finishes.
	if errs[0] == nil {
		t.Error("permanently dead device reported success")
	}
	for i := 1; i < devices; i++ {
		if errs[i] != nil {
			t.Errorf("device %d: %v", i, errs[i])
		}
	}

	// Quorum held every round, and the books balance: every active device
	// either had a fresh upload absorbed or is listed as dropped.
	for _, m := range hist {
		if m.Absorbed < quorum {
			t.Errorf("round %d: %d fresh uploads, quorum %d", m.Round, m.Absorbed, quorum)
		}
		if m.Absorbed+len(m.Dropped) != len(m.Active) {
			t.Errorf("round %d: absorbed %d + dropped %d != active %d",
				m.Round, m.Absorbed, len(m.Dropped), len(m.Active))
		}
	}

	stats := srv.SessionStats()
	if len(stats) != devices {
		t.Fatalf("session stats for %d devices, want %d", len(stats), devices)
	}
	resumes := 0
	for _, st := range stats {
		resumes += st.Resumes
		// Exactly-once: a device can have at most one absorb per round.
		if st.Absorbed+st.Late > rounds {
			t.Errorf("device %d: %d absorbs across %d rounds", st.ID, st.Absorbed+st.Late, rounds)
		}
	}
	if resumes < 2 {
		t.Errorf("total resumes %d, want >= 2 (the two reconnecting devices)", resumes)
	}

	// Every absorb in the history is attributed to a session and vice
	// versa, and the measured traffic totals agree between the two views.
	var histAbsorbed, histLate, statAbsorbed, statLate int
	var histUp, histDown, statUp, statDown int64
	for _, m := range hist {
		histAbsorbed += m.Absorbed
		histLate += m.LateAbsorbed
		histUp += m.BytesUp
		histDown += m.BytesDown
	}
	for _, st := range stats {
		statAbsorbed += st.Absorbed
		statLate += st.Late
		statUp += st.BytesUp
		statDown += st.BytesDown
	}
	if histAbsorbed != statAbsorbed || histLate != statLate {
		t.Errorf("absorb accounting mismatch: history %d/%d vs sessions %d/%d",
			histAbsorbed, histLate, statAbsorbed, statLate)
	}
	if histUp != statUp || histDown != statDown {
		t.Errorf("traffic accounting mismatch: history %d/%d vs sessions %d/%d",
			histUp, histDown, statUp, statDown)
	}
}

// TestIdleDeviceSurvivesIOTimeout pins the idle-wait bugfix: a device
// that is not sent a train request for much longer than its IOTimeout
// (not sampled, or a long server distillation phase) must keep its
// session alive instead of dying of a spurious read timeout.
func TestIdleDeviceSurvivesIOTimeout(t *testing.T) {
	const ioTimeout = 250 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			if _, err := expect(conn, MsgHello); err != nil {
				return err
			}
			asn, err := EncodeAssignment(&Assignment{
				DatasetName: "synthmnist",
				Sizes:       data.Sizes{TrainPerClass: 4, TestPerClass: 2},
				DataSeed:    3,
				Indices:     []int{0, 1, 2, 3},
				Local:       fed.LocalConfig{Epochs: 1, BatchSize: 4, LR: 0.05},
				Rounds:      1,
				ModelSeed:   1003,
			})
			if err != nil {
				return err
			}
			if err := WriteMessage(conn, &Message{Type: MsgWelcome, DeviceID: 0, Token: []byte{1}, Payload: asn}); err != nil {
				return err
			}
			if _, err := expect(conn, MsgInitState); err != nil {
				return err
			}
			// Idle far past the device's IOTimeout before the round starts.
			time.Sleep(4 * ioTimeout)
			if err := WriteMessage(conn, &Message{Type: MsgTrainRequest, Round: 1, DeviceID: 0}); err != nil {
				return err
			}
			up, err := expect(conn, MsgUpload)
			if err != nil {
				return fmt.Errorf("after idle gap: %w", err)
			}
			if up.Round != 1 {
				return fmt.Errorf("upload round %d, want 1", up.Round)
			}
			if err := WriteMessage(conn, &Message{Type: MsgUploadAck, Round: 1, DeviceID: 0}); err != nil {
				return err
			}
			return WriteMessage(conn, &Message{Type: MsgDone, DeviceID: 0})
		}()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := RunDevice(ctx, DeviceConfig{
		Addr: ln.Addr().String(), Arch: "mlp", IOTimeout: ioTimeout,
	}); err != nil {
		t.Fatalf("idle device died: %v", err)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("test server: %v", err)
	}
}

// manualDevice dials and registers a protocol-level device the test
// drives by hand. The returned connection carries a generous deadline so
// a protocol bug fails the test instead of hanging it.
func manualDevice(t *testing.T, addr string) (*deviceSession, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := register(conn, DeviceConfig{Addr: addr, Arch: "mlp", IOTimeout: 20 * time.Second}.withDefaults())
	if err != nil {
		_ = conn.Close()
		t.Fatalf("manual register: %v", err)
	}
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	return sess, conn
}

// readUntil keeps reading until a message of the wanted type (and round,
// if > 0) arrives, ignoring everything else.
func readUntil(t *testing.T, conn net.Conn, want MsgType, round int) *Message {
	t.Helper()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			t.Fatalf("waiting for %v (round %d): %v", want, round, err)
		}
		if m.Type == want && (round == 0 || m.Round == round) {
			return m
		}
	}
}

// TestResumeReplayAbsorbedOnce pins the exactly-once replay contract
// deterministically: a device uploads, disconnects, resumes with its
// token, and replays the same upload (as it would after losing the ack).
// The server must acknowledge the replay but absorb it only once.
func TestResumeReplayAbsorbedOnce(t *testing.T) {
	srv, err := NewServer(chaosServerConfig(2, 1, 0, 0, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	histCh := make(chan fed.History, 1)
	errCh := make(chan error, 1)
	go func() {
		h, err := srv.Run(ctx)
		histCh <- h
		errCh <- err
	}()

	a, connA := manualDevice(t, srv.Addr())
	b, connB := manualDevice(t, srv.Addr())
	defer connA.Close()

	readUntil(t, connA, MsgTrainRequest, 1)
	readUntil(t, connB, MsgTrainRequest, 1)

	// B uploads round 1 and gets the ack...
	payload, _, err := b.dev.UploadPayload(b.cdc)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(connB, &Message{Type: MsgUpload, Round: 1, DeviceID: b.id, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, connB, MsgUploadAck, 1)

	// ...then drops the connection and resumes with its token, replaying
	// the upload as if the ack had been lost.
	_ = connB.Close()
	connB2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connB2.Close()
	_ = connB2.SetDeadline(time.Now().Add(60 * time.Second))
	if err := WriteMessage(connB2, &Message{Type: MsgResume, DeviceID: b.id, Token: b.token, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := expect(connB2, MsgResumeAck); err != nil {
		t.Fatalf("resume rejected: %v", err)
	}
	if err := WriteMessage(connB2, &Message{Type: MsgUpload, Round: 1, DeviceID: b.id, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, connB2, MsgUploadAck, 1) // replay acked so the buffer clears

	// Only now does A upload, so the replay was processed mid-collection.
	payloadA, _, err := a.dev.UploadPayload(a.cdc)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(connA, &Message{Type: MsgUpload, Round: 1, DeviceID: a.id, Payload: payloadA}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, connA, MsgDone, 0)
	readUntil(t, connB2, MsgDone, 0)

	hist := <-histCh
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(hist) != 1 {
		t.Fatalf("history length %d, want 1", len(hist))
	}
	if hist[0].Absorbed != 2 {
		t.Errorf("absorbed %d, want 2 (replay must not double-absorb)", hist[0].Absorbed)
	}
	if hist[0].DroppedUploads != 1 {
		t.Errorf("dropped uploads %d, want 1 (the replayed duplicate)", hist[0].DroppedUploads)
	}
	for _, st := range srv.SessionStats() {
		if st.ID == b.id {
			if st.Resumes != 1 {
				t.Errorf("device %d resumes %d, want 1", st.ID, st.Resumes)
			}
			if st.Duplicates != 1 || st.Absorbed != 1 {
				t.Errorf("device %d absorbed=%d duplicates=%d, want 1/1", st.ID, st.Absorbed, st.Duplicates)
			}
		}
	}
}

// lateUploadRun drives the staleness scenario: device B withholds its
// round-1 upload until round 2 is underway, so it arrives one round
// stale. The caller chooses the staleness bound and asserts on the
// returned history.
func lateUploadRun(t *testing.T, staleness int) (fed.History, []SessionStats) {
	t.Helper()
	srv, err := NewServer(chaosServerConfig(2, 2, 1, staleness, 1500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	histCh := make(chan fed.History, 1)
	errCh := make(chan error, 1)
	go func() {
		h, err := srv.Run(ctx)
		histCh <- h
		errCh <- err
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // device A: a normal healthy participant
		defer wg.Done()
		if _, _, err := RunDevice(ctx, DeviceConfig{Addr: srv.Addr(), Arch: "mlp", IOTimeout: 20 * time.Second}); err != nil {
			t.Errorf("device A: %v", err)
		}
	}()

	b, connB := manualDevice(t, srv.Addr())
	defer connB.Close()
	readUntil(t, connB, MsgTrainRequest, 1)
	payload, _, err := b.dev.UploadPayload(b.cdc)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the round-1 upload until round 2's train request proves round 1
	// closed without us, then send it one round stale.
	readUntil(t, connB, MsgTrainRequest, 2)
	if err := WriteMessage(connB, &Message{Type: MsgUpload, Round: 1, DeviceID: b.id, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, connB, MsgUploadAck, 1) // acked even when dropped
	readUntil(t, connB, MsgDone, 0)

	hist := <-histCh
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	if len(hist) != 2 {
		t.Fatalf("history length %d, want 2", len(hist))
	}
	if len(hist[0].Dropped) != 1 {
		t.Fatalf("round 1 dropped %v, want the withholding device", hist[0].Dropped)
	}
	return hist, srv.SessionStats()
}

// TestLateUploadWithinStalenessBound: a one-round-stale upload absorbs
// into the next teacher window when StalenessBound allows it.
func TestLateUploadWithinStalenessBound(t *testing.T) {
	hist, stats := lateUploadRun(t, 1)
	if hist[1].LateAbsorbed != 1 {
		t.Errorf("round 2 late-absorbed %d, want 1", hist[1].LateAbsorbed)
	}
	late := 0
	for _, st := range stats {
		late += st.Late
	}
	if late != 1 {
		t.Errorf("session late count %d, want 1", late)
	}
}

// TestLateUploadBeyondStalenessBound: with StalenessBound 0 the same
// stale upload is acknowledged but dropped, never absorbed.
func TestLateUploadBeyondStalenessBound(t *testing.T) {
	hist, stats := lateUploadRun(t, 0)
	if hist[1].LateAbsorbed != 0 {
		t.Errorf("round 2 late-absorbed %d, want 0", hist[1].LateAbsorbed)
	}
	if hist[1].DroppedUploads < 1 {
		t.Errorf("round 2 dropped uploads %d, want >= 1", hist[1].DroppedUploads)
	}
	for _, st := range stats {
		if st.Late != 0 {
			t.Errorf("device %d late count %d, want 0", st.ID, st.Late)
		}
	}
}

// TestInvalidResumeRejected: a stray connection presenting a bogus resume
// token is refused without disturbing the registered federation.
func TestInvalidResumeRejected(t *testing.T) {
	srv, err := NewServer(chaosServerConfig(1, 1, 0, 0, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		errCh <- err
	}()
	devDone := make(chan error, 1)
	go func() {
		_, _, err := RunDevice(ctx, DeviceConfig{Addr: srv.Addr(), Arch: "mlp", IOTimeout: 20 * time.Second})
		devDone <- err
	}()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := WriteMessage(conn, &Message{Type: MsgResume, DeviceID: 0, Token: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if reply.Type != MsgError {
		t.Fatalf("forged resume got %v, want %v", reply.Type, MsgError)
	}

	if err := <-devDone; err != nil {
		t.Errorf("healthy device: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Errorf("server: %v", err)
	}
}

// TestRegistrationNotBlockedByStalledConn pins the registration
// head-of-line fix: a client that connects first and never speaks must
// not delay or doom the real devices' registration.
func TestRegistrationNotBlockedByStalledConn(t *testing.T) {
	srv, err := NewServer(chaosServerConfig(2, 1, 0, 0, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The stalled connection arrives before any real device.
	silent, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := RunDevice(ctx, DeviceConfig{Addr: srv.Addr(), Arch: "mlp", IOTimeout: 20 * time.Second}); err != nil {
				t.Errorf("device: %v", err)
			}
		}()
	}
	hist, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(hist) != 1 {
		t.Fatalf("history length %d, want 1", len(hist))
	}
}

// TestMeteredConnCountsWireBytes: the session meters count every byte on
// the wire — the 4-byte frame prefix included — not just payloads.
func TestMeteredConnCountsWireBytes(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var m meter
	mc := &meteredConn{Conn: server, m: &m}

	msg := &Message{Type: MsgUpload, Round: 3, DeviceID: 1, Payload: []byte("0123456789")}
	writeErr := make(chan error, 1)
	go func() { writeErr <- WriteMessage(mc, msg) }()

	var prefix [4]byte
	if _, err := io.ReadFull(client, prefix[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.BigEndian.Uint32(prefix[:]))
	if _, err := io.ReadFull(client, body); err != nil {
		t.Fatal(err)
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	wantDown := int64(4 + len(body))
	if got := m.down.Load(); got != wantDown {
		t.Errorf("down meter %d, want %d (prefix + body)", got, wantDown)
	}

	go func() {
		_, _ = client.Write(prefix[:])
		_, _ = client.Write(body)
	}()
	if _, err := ReadMessage(mc); err != nil {
		t.Fatal(err)
	}
	if got := m.up.Load(); got != wantDown {
		t.Errorf("up meter %d, want %d (prefix + body)", got, wantDown)
	}
}

// TestShardsForRegimes: the transport honours the configured partition
// regime with the experiment runner's vocabulary.
func TestShardsForRegimes(t *testing.T) {
	ds, ok := data.ByName("synthmnist", data.Sizes{TrainPerClass: 6, TestPerClass: 2}, 1)
	if !ok {
		t.Fatal("synthmnist missing")
	}
	const k = 4
	for _, regime := range []string{"", "iid", "quantity:2", "dirichlet:0.5"} {
		shards, err := shardsFor(ds, k, regime, 7)
		if err != nil {
			t.Fatalf("regime %q: %v", regime, err)
		}
		if len(shards) != k {
			t.Fatalf("regime %q: %d shards, want %d", regime, len(shards), k)
		}
		total := 0
		for _, sh := range shards {
			total += len(sh)
		}
		if total == 0 {
			t.Fatalf("regime %q: empty partition", regime)
		}
	}
	// "" and "iid" must agree exactly (the legacy default is preserved).
	a, _ := shardsFor(ds, k, "", 7)
	b, _ := shardsFor(ds, k, "iid", 7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error(`"" and "iid" regimes disagree`)
	}
	for _, bad := range []string{"quantity:0", "quantity:x", "dirichlet:-1", "dirichlet:", "bogus"} {
		if _, err := shardsFor(ds, k, bad, 7); err == nil {
			t.Errorf("regime %q: want error", bad)
		}
	}
}

// TestChaosFailpointDropAndStall drives a mini federation with the
// internal/chaos failpoints armed: transport.conn.drop severs one
// attached connection early in round 1 (whichever session's I/O draws
// the hit) and transport.conn.stall delays periodic reads. Because
// drops fire only on attached connections (never during a handshake),
// the severed device holds its resume token and must reconnect and
// finish the run; the server's history must be complete.
func TestChaosFailpointDropAndStall(t *testing.T) {
	const (
		devices = 4
		rounds  = 2
		quorum  = 3
	)
	plan, err := chaos.Parse("seed=11;transport.conn.drop=on:10;transport.conn.stall@2=every:9")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Activate(plan)
	t.Cleanup(chaos.Deactivate)

	srv, err := NewServer(chaosServerConfig(devices, rounds, quorum, 1, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = RunDevice(ctx, DeviceConfig{
				Addr: srv.Addr(), Arch: "mlp", IOTimeout: 20 * time.Second,
				Reconnect: true, ReconnectBase: 50 * time.Millisecond,
			})
		}(i)
	}
	hist, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(hist) != rounds {
		t.Fatalf("history length %d, want %d", len(hist), rounds)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("device %d: %v", i, e)
		}
	}
	if got := plan.Fired(chaos.SiteConnDrop); got != 1 {
		t.Errorf("conn.drop fired %d times, want exactly 1 (on:10)", got)
	}
	resumes := 0
	for _, st := range srv.SessionStats() {
		resumes += st.Resumes
	}
	if resumes < 1 {
		t.Error("no session resumed after the injected drop")
	}
}
