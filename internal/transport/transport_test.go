package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/fedzkt"
	"github.com/fedzkt/fedzkt/internal/model"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type: MsgUpload, Round: 3, DeviceID: 2, Arch: "cnn",
		Payload: []byte{1, 2, 3, 4, 5},
	}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Round != 3 || out.DeviceID != 2 || out.Arch != "cnn" || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestMessageTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgWelcome, MsgInitState, MsgTrainRequest, MsgUpload, MsgDownload, MsgDone, MsgError} {
		if s := mt.String(); strings.HasPrefix(s, "MsgType(") {
			t.Fatalf("missing String case for %d", mt)
		}
	}
}

func TestReadMessageRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], DefaultMaxMessage+1)
	buf.Write(prefix[:])
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgHello}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Fatal("want error for truncated frame")
	}
}

func TestReadMessageCorruptBody(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], 4)
	buf.Write(prefix[:])
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("want error for corrupt gob body")
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	in := &Assignment{
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 5, TestPerClass: 2},
		DataSeed:    42,
		Indices:     []int{3, 1, 4, 1, 5},
		Local:       fed.LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.05},
		Rounds:      7,
		ModelSeed:   1042,
		StateCodec:  "int8",
	}
	b, err := EncodeAssignment(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAssignment(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.DatasetName != in.DatasetName || out.Rounds != 7 || len(out.Indices) != 5 || out.Local.LR != 0.05 {
		t.Fatalf("assignment mismatch: %+v", out)
	}
	if out.StateCodec != "int8" {
		t.Fatalf("assignment StateCodec %q, want int8", out.StateCodec)
	}
}

func TestExpectSurfacesPeerError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgError, Reason: "boom"}); err != nil {
		t.Fatal(err)
	}
	if _, err := expect(&buf, MsgHello); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want peer error with reason", err)
	}
}

func TestStateDictOverWireBitExact(t *testing.T) {
	m := model.MustBuild("lenet-s", model.Shape{C: 1, H: 8, W: 8}, 4, tensor.NewRand(1))
	src := nn.CaptureState(m)
	payload, err := nn.EncodeState(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgUpload, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nn.DecodeState(out.Payload)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range src {
		if tensor.MaxAbsDiff(got[name], want) != 0 {
			t.Fatalf("state %q not bit-exact over the wire", name)
		}
	}
}

// TestEndToEndLoopback runs a real TCP federation on 127.0.0.1 with two
// heterogeneous devices and verifies the round loop completes with sane
// metrics, under the default dense codec and under int8 quantised state.
func TestEndToEndLoopback(t *testing.T) {
	dense := endToEndLoopback(t, "")
	quant := endToEndLoopback(t, "int8")
	// The quantised uplink carries ~1 byte per element instead of 8; even
	// with container overhead the measured traffic must shrink >4×.
	if quant[0].BytesUp*4 > dense[0].BytesUp {
		t.Fatalf("int8 uplink %d bytes vs float64 %d: expected >4× reduction", quant[0].BytesUp, dense[0].BytesUp)
	}
}

func endToEndLoopback(t *testing.T, stateCodec string) fed.History {
	srv, err := NewServer(ServerConfig{
		Addr:        "127.0.0.1:0",
		NumDevices:  2,
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 10, TestPerClass: 4},
		Fed: fedzkt.Config{
			Rounds: 2, LocalEpochs: 1, DistillIters: 4, StudentSteps: 1,
			DistillBatch: 8, BatchSize: 8, ZDim: 8,
			DeviceLR: 0.05, ServerLR: 0.05, GenLR: 3e-4, Momentum: 0.9, Seed: 5,
			StateCodec: stateCodec,
		},
		IOTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	devErrs := make([]error, 2)
	for i, arch := range []string{"mlp", "lenet-s"} {
		wg.Add(1)
		go func(i int, arch string) {
			defer wg.Done()
			_, _, devErrs[i] = RunDevice(ctx, DeviceConfig{
				Addr: srv.Addr(), Arch: arch, IOTimeout: time.Minute,
			})
		}(i, arch)
	}

	hist, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	for i, err := range devErrs {
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
	}
	if len(hist) != 2 {
		t.Fatalf("history len %d, want 2", len(hist))
	}
	for _, m := range hist {
		if m.BytesUp == 0 || m.BytesDown == 0 {
			t.Fatalf("round %d: missing byte accounting (%d up, %d down)", m.Round, m.BytesUp, m.BytesDown)
		}
		if m.GlobalAcc < 0 || m.GlobalAcc > 1 {
			t.Fatalf("round %d: global acc %v", m.Round, m.GlobalAcc)
		}
	}
	return hist
}

// TestServerCancelledDuringAccept verifies ctx cancellation unblocks the
// accept loop promptly.
func TestServerCancelledDuringAccept(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:        "127.0.0.1:0",
		NumDevices:  3,
		DatasetName: "synthmnist",
		Sizes:       data.Sizes{TrainPerClass: 4, TestPerClass: 2},
		Fed:         fedzkt.Config{Rounds: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want error after cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not unblock after cancellation")
	}
}

// TestDeviceDialFailure verifies a clean error when no server listens.
func TestDeviceDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := RunDevice(ctx, DeviceConfig{Addr: "127.0.0.1:1", Arch: "mlp", DialTimeout: time.Second}); err == nil {
		t.Fatal("want dial error")
	}
}
