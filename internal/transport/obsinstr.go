package transport

import "github.com/fedzkt/fedzkt/internal/obs"

// This file binds the session layer to the observability substrate:
// aggregate scrape-time views over the per-session stats (which stay the
// source of truth behind SessionStats), and the tracer the connection and
// round-loop spans go to. Purely observational.

// tracer is the span sink for transport session events.
func tracer() *obs.Tracer { return obs.DefaultTracer() }

// RegisterMetrics binds aggregate session-layer counters into reg under
// fedzkt_transport_* names. The values are computed from the live
// per-session stats at scrape time.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	sum := func(f func(SessionStats) int64) func() float64 {
		return func() float64 {
			var t int64
			for _, st := range s.SessionStats() {
				t += f(st)
			}
			return float64(t)
		}
	}
	reg.RegisterGaugeFunc("fedzkt_transport_sessions", "registered device sessions",
		func() float64 { return float64(len(s.SessionStats())) })
	reg.RegisterCounterFunc("fedzkt_transport_resumes_total", "session resumes after disconnects",
		sum(func(st SessionStats) int64 { return int64(st.Resumes) }))
	reg.RegisterCounterFunc("fedzkt_transport_uploads_absorbed_total", "fresh uploads absorbed over the wire",
		sum(func(st SessionStats) int64 { return int64(st.Absorbed) }))
	reg.RegisterCounterFunc("fedzkt_transport_uploads_late_total", "stale uploads absorbed within the staleness bound",
		sum(func(st SessionStats) int64 { return int64(st.Late) }))
	reg.RegisterCounterFunc("fedzkt_transport_uploads_duplicate_total", "replayed uploads discarded as duplicates",
		sum(func(st SessionStats) int64 { return int64(st.Duplicates) }))
	reg.RegisterCounterFunc("fedzkt_transport_wire_up_bytes_total", "bytes received from devices",
		sum(func(st SessionStats) int64 { return st.BytesUp }))
	reg.RegisterCounterFunc("fedzkt_transport_wire_down_bytes_total", "bytes sent to devices",
		sum(func(st SessionStats) int64 { return st.BytesDown }))
}
