package transport

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fedzkt/fedzkt/internal/chaos"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/partition"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// This file holds the server's session machinery: the per-device session
// record that outlives any single TCP connection, the reader/writer
// goroutine pair serving whichever connection is currently attached, the
// signed resume tokens that let a reconnecting device re-claim its
// session, and the byte meters that account real wire traffic (frame
// prefixes, registration handshakes and all) per device.

// inboundKind discriminates events flowing into the central round loop.
type inboundKind uint8

const (
	// evMessage carries a protocol message read from a device connection.
	evMessage inboundKind = iota
	// evAttached reports that a connection (fresh registration or resume)
	// is now serving the session. pendingRound carries the device's
	// announced unacknowledged upload round (0 = none), so the round loop
	// can decide whether a replay is already on its way.
	evAttached
	// evDetached reports that the session's connection died.
	evDetached
)

// inbound is one event delivered to the central round loop.
type inbound struct {
	id           int
	kind         inboundKind
	msg          *Message
	pendingRound int
}

// meter counts raw bytes crossing a session's connections, cumulatively
// across reconnects. Up is device→server (connection reads), down is
// server→device (connection writes), so the totals include every frame
// prefix, handshake and protocol envelope — the measured-length
// convention the traffic columns report.
type meter struct {
	up, down atomic.Int64
}

// meteredConn counts all bytes read from and written to the wrapped
// connection into its session meter.
type meteredConn struct {
	net.Conn
	m *meter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.up.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.down.Add(int64(n))
	return n, err
}

// chaosConn arms the transport failpoints on an attached connection:
// transport.conn.drop severs it mid-read or mid-write — the session
// layer's resume tokens are what recovers the device — and
// transport.conn.stall delays a read like a network hiccup would.
// Handshake connections are deliberately not wrapped: a drop before a
// device holds its resume token would abort registration, not exercise
// recovery.
type chaosConn struct {
	net.Conn
}

func (c *chaosConn) Read(p []byte) (int, error) {
	if d := chaos.StallFor(chaos.SiteConnStall); d > 0 {
		time.Sleep(d)
	}
	if chaos.Fire(chaos.SiteConnDrop) {
		_ = c.Conn.Close()
		return 0, &chaos.InjectedError{Site: chaos.SiteConnDrop, Op: "conn read"}
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if chaos.Fire(chaos.SiteConnDrop) {
		_ = c.Conn.Close()
		return 0, &chaos.InjectedError{Site: chaos.SiteConnDrop, Op: "conn write"}
	}
	return c.Conn.Write(p)
}

// newResumeKey draws the per-run HMAC key for resume tokens.
func newResumeKey() ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("transport: resume key: %w", err)
	}
	return key, nil
}

// resumeToken signs a device id with the server's per-run key. The token
// is constant for a device within one run and worthless across runs.
func resumeToken(key []byte, id int) []byte {
	mac := hmac.New(sha256.New, key)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// checkResumeToken verifies a presented token against the key and id.
func checkResumeToken(key []byte, id int, token []byte) bool {
	return hmac.Equal(resumeToken(key, id), token)
}

// connState is the goroutine pair serving one attached connection: a
// reader feeding the central round loop and a writer draining the outbox.
type connState struct {
	conn   net.Conn
	outbox chan *Message
	done   chan struct{} // closed when the writer exits
}

// session is one device's registration with the server, surviving any
// number of connection losses and resumes.
type session struct {
	id    int
	arch  string
	token []byte
	meter meter

	mu   sync.Mutex
	cs   *connState // nil while detached
	gone bool       // set on shutdown: no further attaches

	// Stats are owned by the round loop (absorb counters) and the attach
	// path (resume counter, under mu); read whole via Server.SessionStats
	// after Run returns.
	resumes    int
	absorbed   int
	late       int
	duplicates int
}

// attach installs conn as the session's live connection, detaching any
// previous one, and spawns its reader/writer pair. events receives the
// attach notification, every message the reader produces, and the detach
// notification when the connection dies. ioTimeout bounds each write.
func (s *session) attach(conn net.Conn, pendingRound int, events chan<- inbound, ioTimeout time.Duration) {
	mc := &chaosConn{Conn: &meteredConn{Conn: conn, m: &s.meter}}
	cs := &connState{
		conn:   conn,
		outbox: make(chan *Message, 16),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old := s.cs; old != nil {
		// A zombie connection is still attached (e.g. the peer vanished
		// without TCP noticing); the new one supersedes it. Removing it
		// from the session transfers the outbox-close to us.
		_ = old.conn.Close()
		close(old.outbox)
	}
	s.cs = cs
	s.mu.Unlock()

	// Writer: drains the outbox with a per-message deadline. A write
	// failure kills the connection, which unblocks the reader too.
	go func() {
		defer close(cs.done)
		for m := range cs.outbox {
			_ = conn.SetWriteDeadline(time.Now().Add(ioTimeout))
			if err := WriteMessage(mc, m); err != nil {
				_ = conn.Close()
				return
			}
		}
	}()

	// Reader: no read deadline — a healthy device may sit idle for many
	// rounds (quorum deadlines bound the rounds, not the connections).
	// Server.Close and ctx cancellation close the conn to unblock it.
	go func() {
		events <- inbound{id: s.id, kind: evAttached, pendingRound: pendingRound}
		for {
			_ = conn.SetReadDeadline(time.Time{})
			m, err := ReadMessage(mc)
			if err != nil {
				s.detach(cs)
				events <- inbound{id: s.id, kind: evDetached}
				return
			}
			events <- inbound{id: s.id, kind: evMessage, msg: m}
		}
	}()
}

// detach tears down cs if it is still the session's live connection.
// Whoever removes a connState from the session owns closing its outbox
// (here, attach's supersession, or shutdown), so the close happens
// exactly once.
func (s *session) detach(cs *connState) {
	s.mu.Lock()
	owned := s.cs == cs
	if owned {
		s.cs = nil
	}
	s.mu.Unlock()
	_ = cs.conn.Close()
	if owned {
		close(cs.outbox)
	}
}

// enqueue hands a message to the session's writer. Messages to a
// detached session are dropped (the resume path compensates); a full
// outbox also drops rather than blocking the round loop.
func (s *session) enqueue(m *Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cs == nil {
		return false
	}
	select {
	case s.cs.outbox <- m:
		return true
	default:
		return false
	}
}

// shutdown closes the session's writer (after its queue drains) and
// forbids further attaches. It returns the writer's done channel, or nil
// if the session was already detached.
func (s *session) shutdown() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gone = true
	if s.cs == nil {
		return nil
	}
	cs := s.cs
	s.cs = nil
	close(cs.outbox)
	return cs.done
}

// count increments one of the session's stat counters under its lock
// (stats may be snapshot concurrently by Server.SessionStats).
func (s *session) count(field *int) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// attached reports whether the session currently has a live connection.
func (s *session) attached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cs != nil
}

// SessionStats is the per-device observability record the server exposes
// after a run: how often the device resumed and what happened to its
// uploads.
type SessionStats struct {
	// ID is the device id.
	ID int
	// Arch is the architecture the device registered with.
	Arch string
	// Resumes counts successful session resumes after disconnects.
	Resumes int
	// Absorbed counts fresh current-round uploads absorbed.
	Absorbed int
	// Late counts stale uploads absorbed within the staleness bound.
	Late int
	// Duplicates counts replayed uploads discarded because their round
	// was already absorbed (the exactly-once guarantee in action).
	Duplicates int
	// BytesUp and BytesDown are the measured wire totals across all of
	// the session's connections, frame overhead included.
	BytesUp, BytesDown int64
}

// shardsFor partitions ds across k devices under the named regime:
// "iid" (also the "" default), "quantity:<classes-per-device>", or
// "dirichlet:<beta>" — the same regime vocabulary the experiment runner
// uses, so distributed runs match simulator runs with the same config.
func shardsFor(ds *data.Dataset, k int, regime string, seed uint64) ([][]int, error) {
	rng := tensor.NewRand(seed + 21)
	kind, arg, _ := strings.Cut(regime, ":")
	switch kind {
	case "", "iid":
		return partition.IID(ds.NumTrain(), k, rng), nil
	case "quantity":
		c, err := strconv.Atoi(arg)
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("transport: partition %q: want quantity:<classes-per-device>", regime)
		}
		return partition.QuantitySkew(ds.TrainY, ds.Classes, k, c, rng), nil
	case "dirichlet":
		beta, err := strconv.ParseFloat(arg, 64)
		if err != nil || beta <= 0 {
			return nil, fmt.Errorf("transport: partition %q: want dirichlet:<beta>", regime)
		}
		return partition.Dirichlet(ds.TrainY, ds.Classes, k, beta, rng), nil
	default:
		return nil, fmt.Errorf("transport: unknown partition regime %q", regime)
	}
}
