package transport

import (
	"context"
	"fmt"
	"net"
	"time"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/codec"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/model"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// DeviceConfig configures a networked FedZKT device.
type DeviceConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Arch is the on-device architecture this device chooses for itself
	// (the heart of FedZKT: the server adapts, not the device).
	Arch string
	// DialTimeout bounds the initial connection attempt.
	DialTimeout time.Duration
	// IOTimeout bounds each read or write.
	IOTimeout time.Duration
	// Progress, when non-nil, receives a line per round (for the CLI).
	Progress func(round int, trainLoss float64)
}

func (c DeviceConfig) withDefaults() DeviceConfig {
	if c.Arch == "" {
		c.Arch = "cnn"
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 5 * time.Minute
	}
	return c
}

// RunDevice connects to the server, registers, and participates in the
// federated rounds until the server sends MsgDone or ctx is cancelled. It
// returns the device's final model and its shard-local view of the data
// (useful for post-run evaluation by the caller).
func RunDevice(ctx context.Context, cfg DeviceConfig) (nn.Module, *data.Dataset, error) {
	cfg = cfg.withDefaults()
	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dial %s: %w", cfg.Addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	deadline := func() { _ = conn.SetDeadline(time.Now().Add(cfg.IOTimeout)) }

	// 1. Hello → Welcome: learn the assignment.
	deadline()
	if err := WriteMessage(conn, &Message{Type: MsgHello, Arch: cfg.Arch}); err != nil {
		return nil, nil, err
	}
	welcome, err := expect(conn, MsgWelcome)
	if err != nil {
		return nil, nil, err
	}
	asn, err := DecodeAssignment(welcome.Payload)
	if err != nil {
		return nil, nil, err
	}

	// 2. Reconstruct the local world: dataset (synthetic and seeded, so no
	// bulk data crosses the wire), shard, and model.
	ds, ok := data.ByName(asn.DatasetName, asn.Sizes, asn.DataSeed)
	if !ok {
		return nil, nil, fmt.Errorf("transport: server assigned unknown dataset %q", asn.DatasetName)
	}
	m, err := model.Build(cfg.Arch, model.Shape{C: ds.C, H: ds.H, W: ds.W}, ds.Classes, tensor.NewRand(asn.ModelSeed))
	if err != nil {
		return nil, nil, err
	}
	dev := fed.NewDevice(welcome.DeviceID, cfg.Arch, m, data.NewSubset(ds, asn.Indices))
	// The connection loop is single-goroutine, so one step-scoped arena
	// serves every training round of this device's lifetime.
	dev.Scratch = ag.NewArena()

	// The server dictates the federation's state codec; every state the
	// device puts on the wire is encoded with it.
	cdc, err := codec.Get(asn.StateCodec)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: server assigned %w", err)
	}

	// 3. Send the initial state for replica registration.
	initPayload, _, err := dev.UploadPayload(cdc)
	if err != nil {
		return nil, nil, err
	}
	deadline()
	if err := WriteMessage(conn, &Message{Type: MsgInitState, DeviceID: welcome.DeviceID, Payload: initPayload}); err != nil {
		return nil, nil, err
	}

	// 4. Round loop: train on request, upload, absorb the download.
	for {
		deadline()
		msg, err := ReadMessage(conn)
		if err != nil {
			if ctx.Err() != nil {
				return m, ds, fmt.Errorf("transport: device cancelled: %w", ctx.Err())
			}
			return m, ds, err
		}
		switch msg.Type {
		case MsgTrainRequest:
			rng := tensor.NewRand(asn.DataSeed ^ (uint64(msg.Round)<<20 + uint64(welcome.DeviceID)<<4 + 0x5EED))
			loss, err := dev.LocalUpdate(asn.Local, rng)
			if err != nil {
				_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
				return m, ds, err
			}
			if cfg.Progress != nil {
				cfg.Progress(msg.Round, loss)
			}
			payload, _, err := dev.UploadPayload(cdc)
			if err != nil {
				return m, ds, err
			}
			deadline()
			if err := WriteMessage(conn, &Message{Type: MsgUpload, Round: msg.Round, DeviceID: welcome.DeviceID, Payload: payload}); err != nil {
				return m, ds, err
			}
		case MsgDownload:
			if err := dev.DownloadPayload(msg.Payload); err != nil {
				return m, ds, err
			}
		case MsgDone:
			return m, ds, nil
		case MsgError:
			return m, ds, fmt.Errorf("transport: server error: %s", msg.Reason)
		default:
			return m, ds, fmt.Errorf("transport: unexpected message %v", msg.Type)
		}
	}
}
