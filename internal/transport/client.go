package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/codec"
	"github.com/fedzkt/fedzkt/internal/data"
	"github.com/fedzkt/fedzkt/internal/fed"
	"github.com/fedzkt/fedzkt/internal/model"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// DeviceConfig configures a networked FedZKT device.
type DeviceConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Arch is the on-device architecture this device chooses for itself
	// (the heart of FedZKT: the server adapts, not the device).
	Arch string
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
	// IOTimeout bounds active transfers: every write, and the handshake
	// reads of registration and resume. The idle wait for the next server
	// message is NOT bounded by it — a device that is not sampled for
	// many rounds, or waits out a long server distillation phase, sits on
	// an unbounded read instead of dying of a spurious timeout.
	IOTimeout time.Duration
	// Progress, when non-nil, receives a line per round (for the CLI).
	Progress func(round int, trainLoss float64)
	// OnRoundSummary, when non-nil, receives the server's per-round
	// summary broadcasts.
	OnRoundSummary func(RoundSummary)
	// Reconnect enables the fault-tolerant session loop: when the
	// connection drops, the device redials with jittered exponential
	// backoff, presents its resume token, replays its last
	// unacknowledged upload, and carries on mid-round.
	Reconnect bool
	// MaxRetries bounds consecutive failed reconnect attempts before the
	// device gives up (default 8; the counter resets after a successful
	// resume).
	MaxRetries int
	// ReconnectBase is the initial backoff delay (default 100ms, doubled
	// per consecutive failure, capped at 5s, with ±50% jitter).
	ReconnectBase time.Duration
}

func (c DeviceConfig) withDefaults() DeviceConfig {
	if c.Arch == "" {
		c.Arch = "cnn"
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 5 * time.Minute
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.ReconnectBase == 0 {
		c.ReconnectBase = 100 * time.Millisecond
	}
	return c
}

// errDone signals the server's clean MsgDone shutdown internally.
var errDone = errors.New("transport: done")

// pendingUpload is the device's replay buffer: its last upload until the
// server acknowledges it. Replayed on resume, so an upload whose ack was
// lost to a disconnect still reaches the server exactly once (the server
// deduplicates by round).
type pendingUpload struct {
	round   int
	payload []byte
}

// deviceSession is the device-side session state that survives
// reconnects: the assignment, the local world built from it, the resume
// token, and the replay buffer.
type deviceSession struct {
	cfg   DeviceConfig
	id    int
	token []byte
	asn   *Assignment
	ds    *data.Dataset
	m     nn.Module
	dev   *fed.Device
	cdc   codec.Codec

	lastTrained int // highest round already trained (dedups re-sent train requests)
	pending     *pendingUpload
}

// RunDevice connects to the server, registers, and participates in the
// federated rounds until the server sends MsgDone or ctx is cancelled. It
// returns the device's final model and its shard-local view of the data
// (useful for post-run evaluation by the caller). With cfg.Reconnect set
// it survives connection losses by resuming its session.
func RunDevice(ctx context.Context, cfg DeviceConfig) (nn.Module, *data.Dataset, error) {
	cfg = cfg.withDefaults()
	conn, err := dial(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	sess, err := register(conn, cfg)
	if err != nil {
		_ = conn.Close()
		return nil, nil, err
	}

	for {
		err := sess.serve(ctx, conn)
		_ = conn.Close()
		switch {
		case errors.Is(err, errDone):
			return sess.m, sess.ds, nil
		case ctx.Err() != nil:
			return sess.m, sess.ds, fmt.Errorf("transport: device cancelled: %w", ctx.Err())
		case !cfg.Reconnect:
			return sess.m, sess.ds, err
		case errors.Is(err, errServerReject):
			// The server refused us explicitly; retrying is pointless.
			return sess.m, sess.ds, err
		}
		conn, err = sess.reconnect(ctx)
		if err != nil {
			return sess.m, sess.ds, err
		}
	}
}

// dial opens one connection attempt.
func dial(ctx context.Context, cfg DeviceConfig) (net.Conn, error) {
	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", cfg.Addr, err)
	}
	return conn, nil
}

// register performs the Hello → Welcome → InitState handshake and builds
// the device's local world from the assignment.
func register(conn net.Conn, cfg DeviceConfig) (*deviceSession, error) {
	deadline := func() { _ = conn.SetDeadline(time.Now().Add(cfg.IOTimeout)) }

	// 1. Hello → Welcome: learn the assignment and the resume token.
	deadline()
	if err := WriteMessage(conn, &Message{Type: MsgHello, Arch: cfg.Arch}); err != nil {
		return nil, err
	}
	welcome, err := expect(conn, MsgWelcome)
	if err != nil {
		return nil, err
	}
	asn, err := DecodeAssignment(welcome.Payload)
	if err != nil {
		return nil, err
	}

	// 2. Reconstruct the local world: dataset (synthetic and seeded, so no
	// bulk data crosses the wire), shard, and model.
	ds, ok := data.ByName(asn.DatasetName, asn.Sizes, asn.DataSeed)
	if !ok {
		return nil, fmt.Errorf("transport: server assigned unknown dataset %q", asn.DatasetName)
	}
	m, err := model.Build(cfg.Arch, model.Shape{C: ds.C, H: ds.H, W: ds.W}, ds.Classes, tensor.NewRand(asn.ModelSeed))
	if err != nil {
		return nil, err
	}
	dev := fed.NewDevice(welcome.DeviceID, cfg.Arch, m, data.NewSubset(ds, asn.Indices))
	// The round loop is single-goroutine for the device's lifetime, so
	// one step-scoped arena serves every training round.
	dev.Scratch = ag.NewArena()

	// The server dictates the federation's state codec; every state the
	// device puts on the wire is encoded with it.
	cdc, err := codec.Get(asn.StateCodec)
	if err != nil {
		return nil, fmt.Errorf("transport: server assigned %w", err)
	}

	sess := &deviceSession{
		cfg: cfg, id: welcome.DeviceID, token: welcome.Token,
		asn: asn, ds: ds, m: m, dev: dev, cdc: cdc,
	}

	// 3. Send the initial state for replica registration.
	initPayload, _, err := dev.UploadPayload(cdc)
	if err != nil {
		return nil, err
	}
	deadline()
	if err := WriteMessage(conn, &Message{Type: MsgInitState, DeviceID: sess.id, Payload: initPayload}); err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return sess, nil
}

// errServerReject marks an explicit MsgError from the server — a
// terminal condition the reconnect loop must not retry.
var errServerReject = errors.New("transport: server error")

// serve runs the round loop on one connection until it dies, the server
// finishes (errDone), or the server rejects us. Idle waits read without
// a deadline; only writes carry the IO timeout.
func (s *deviceSession) serve(ctx context.Context, conn net.Conn) error {
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	writeDeadline := func() { _ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout)) }

	for {
		// Idle wait: deliberately unbounded. A device that is not sampled
		// for longer than any fixed timeout must keep its session alive.
		_ = conn.SetReadDeadline(time.Time{})
		msg, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		switch msg.Type {
		case MsgTrainRequest:
			if msg.Round <= s.lastTrained {
				// The server re-sends the current round's request on
				// resume when in doubt; training the same round twice
				// would only produce a duplicate upload.
				continue
			}
			rng := tensor.NewRand(s.asn.DataSeed ^ (uint64(msg.Round)<<20 + uint64(s.id)<<4 + 0x5EED))
			loss, err := s.dev.LocalUpdate(s.asn.Local, rng)
			if err != nil {
				writeDeadline()
				_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
				return err
			}
			s.lastTrained = msg.Round
			if s.cfg.Progress != nil {
				s.cfg.Progress(msg.Round, loss)
			}
			payload, _, err := s.dev.UploadPayload(s.cdc)
			if err != nil {
				return err
			}
			s.pending = &pendingUpload{round: msg.Round, payload: payload}
			writeDeadline()
			if err := WriteMessage(conn, &Message{Type: MsgUpload, Round: msg.Round, DeviceID: s.id, Payload: payload}); err != nil {
				return err
			}
		case MsgUploadAck:
			if s.pending != nil && s.pending.round == msg.Round {
				s.pending = nil
			}
		case MsgDownload:
			if err := s.dev.DownloadPayload(msg.Payload); err != nil {
				return err
			}
		case MsgRoundSummary:
			if s.cfg.OnRoundSummary != nil {
				summary, err := DecodeRoundSummary(msg.Payload)
				if err != nil {
					return err
				}
				s.cfg.OnRoundSummary(*summary)
			}
		case MsgDone:
			return errDone
		case MsgError:
			return fmt.Errorf("%w: %s", errServerReject, msg.Reason)
		default:
			return fmt.Errorf("transport: unexpected message %v", msg.Type)
		}
	}
}

// reconnect redials with jittered exponential backoff and resumes the
// session: present the token, then replay the pending unacknowledged
// upload so no trained round is lost to a dropped connection.
func (s *deviceSession) reconnect(ctx context.Context) (net.Conn, error) {
	delay := s.cfg.ReconnectBase
	const maxDelay = 5 * time.Second
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxRetries; attempt++ {
		// ±50% jitter decorrelates reconnect stampedes after a server
		// blip takes many devices down at once.
		jittered := time.Duration(float64(delay) * (0.5 + rand.Float64()))
		select {
		case <-time.After(jittered):
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: device cancelled: %w", ctx.Err())
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}

		conn, err := s.resumeOnce(ctx)
		if err == nil {
			return conn, nil
		}
		if errors.Is(err, errServerReject) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: resume failed after %d attempts: %w", s.cfg.MaxRetries, lastErr)
}

// resumeOnce performs one dial + resume handshake + replay.
func (s *deviceSession) resumeOnce(ctx context.Context) (net.Conn, error) {
	conn, err := dial(ctx, s.cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (net.Conn, error) {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(s.cfg.IOTimeout))
	pendingRound := 0
	if s.pending != nil {
		pendingRound = s.pending.round
	}
	if err := WriteMessage(conn, &Message{Type: MsgResume, DeviceID: s.id, Token: s.token, Round: pendingRound}); err != nil {
		return fail(err)
	}
	ack, err := ReadMessage(conn)
	if err != nil {
		return fail(err)
	}
	if ack.Type == MsgError {
		return fail(fmt.Errorf("%w: %s", errServerReject, ack.Reason))
	}
	if ack.Type != MsgResumeAck {
		return fail(fmt.Errorf("transport: expected resume-ack, got %v", ack.Type))
	}
	if s.pending != nil {
		if err := WriteMessage(conn, &Message{Type: MsgUpload, Round: s.pending.round, DeviceID: s.id, Payload: s.pending.payload}); err != nil {
			return fail(err)
		}
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}
