package model

import (
	"testing"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// TestAllArchitecturesAt8x8 covers the scaled experiment image size used
// by the default experiment scale.
func TestAllArchitecturesAt8x8(t *testing.T) {
	for _, name := range Names() {
		for _, c := range []int{1, 3} {
			in := Shape{C: c, H: 8, W: 8}
			m, err := Build(name, in, 10, tensor.NewRand(1))
			if err != nil {
				t.Fatalf("%s at %v: %v", name, in, err)
			}
			y := m.Forward(ag.Const(tensor.New(1, c, 8, 8)))
			if s := y.Shape(); s[1] != 10 {
				t.Fatalf("%s at %v: output %v", name, in, s)
			}
		}
	}
}

// TestGeneratorStateRoundTrip ensures the generator's full state (stem,
// stem BN, decoder) serialises and restores exactly — the checkpointing
// path depends on it.
func TestGeneratorStateRoundTrip(t *testing.T) {
	g1 := NewGenerator(16, Shape{C: 1, H: 8, W: 8}, tensor.NewRand(2))
	g2 := NewGenerator(16, Shape{C: 1, H: 8, W: 8}, tensor.NewRand(99))
	if err := nn.LoadState(g2, nn.CaptureState(g1)); err != nil {
		t.Fatal(err)
	}
	g1.SetTraining(false)
	g2.SetTraining(false)
	z := g1.SampleZ(3, tensor.NewRand(3))
	a := g1.Forward(ag.Const(z)).Value()
	b := g2.Forward(ag.Const(z.Clone())).Value()
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("generators disagree after state transfer")
	}
}

// TestGeneratorDeterministicSampling: same RNG seed, same synthetic batch.
func TestGeneratorDeterministicSampling(t *testing.T) {
	g := NewGenerator(8, Shape{C: 1, H: 8, W: 8}, tensor.NewRand(4))
	g.SetTraining(false)
	a := g.Generate(2, tensor.NewRand(5))
	b := g.Generate(2, tensor.NewRand(5))
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("generation not deterministic under fixed seed")
	}
}

// TestGeneratorRejectsBadShapes documents the contract.
func TestGeneratorRejectsBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for indivisible spatial size")
		}
	}()
	NewGenerator(8, Shape{C: 1, H: 10, W: 10}, tensor.NewRand(6))
}

// TestGeneratorRejectsWrongZDim documents the forward contract.
func TestGeneratorRejectsWrongZDim(t *testing.T) {
	g := NewGenerator(8, Shape{C: 1, H: 8, W: 8}, tensor.NewRand(7))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong z dimension")
		}
	}()
	g.Forward(ag.Const(tensor.New(2, 9)))
}
