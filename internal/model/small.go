package model

import (
	"math/rand/v2"

	"github.com/fedzkt/fedzkt/internal/nn"
)

// buildMLP is the "Fully-Connected Model" of the small-dataset zoo:
// Flatten → 256 → 128 → classes with ReLU.
func buildMLP(in Shape, classes int, rng *rand.Rand) nn.Module {
	return nn.NewSequential(
		nn.Flatten{},
		nn.NewLinear(in.Numel(), 256, true, rng),
		nn.ReLU{},
		nn.NewLinear(256, 128, true, rng),
		nn.ReLU{},
		nn.NewLinear(128, classes, true, rng),
	)
}

// buildCNN is the "CNN model" of the small-dataset zoo: two conv/BN/pool
// stages followed by a classifier head.
func buildCNN(in Shape, classes int, rng *rand.Rand) nn.Module {
	h4, w4 := in.H/4, in.W/4
	return nn.NewSequential(
		nn.NewConv2d(in.C, 16, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(16),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.NewConv2d(16, 32, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(32),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.Flatten{},
		nn.NewLinear(32*h4*w4, classes, true, rng),
	)
}

// buildLeNet is a LeNet-like architecture: two convolutional layers and
// three fully-connected layers, parameterised by the channel and hidden
// sizes to create the small/medium/large capacity variants.
func buildLeNet(in Shape, classes int, rng *rand.Rand, c1, c2, hidden int) nn.Module {
	h4, w4 := in.H/4, in.W/4
	return nn.NewSequential(
		nn.NewConv2d(in.C, c1, 5, 1, 2, true, rng),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.NewConv2d(c1, c2, 5, 1, 2, true, rng),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.Flatten{},
		nn.NewLinear(c2*h4*w4, hidden, true, rng),
		nn.ReLU{},
		nn.NewLinear(hidden, hidden/2, true, rng),
		nn.ReLU{},
		nn.NewLinear(hidden/2, classes, true, rng),
	)
}

// buildGlobal is the server's global model F: a deeper VGG-style CNN that
// is larger than any on-device model, reflecting the paper's assumption of
// a powerful server. Channel widths are chosen so a full distillation
// round stays tractable on a single CPU core while F remains the largest
// model in the federation.
func buildGlobal(in Shape, classes int, rng *rand.Rand) nn.Module {
	h4, w4 := in.H/4, in.W/4
	return nn.NewSequential(
		nn.NewConv2d(in.C, 24, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(24),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.NewConv2d(24, 48, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(48),
		nn.ReLU{},
		nn.MaxPool2d{K: 2, Stride: 2},
		nn.NewConv2d(48, 48, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(48),
		nn.ReLU{},
		nn.Flatten{},
		nn.NewLinear(48*h4*w4, 128, true, rng),
		nn.ReLU{},
		nn.NewLinear(128, classes, true, rng),
	)
}
