package model

import (
	"math/rand/v2"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// shuffleUnit is the ShuffleNetV2 building block. With stride 1 the input
// is channel-split in half: one half passes through untouched, the other
// through 1×1 → depthwise 3×3 → 1×1; the halves are concatenated and
// channel-shuffled. With stride 2 both branches process (and downsample)
// the full input, doubling the channel count.
type shuffleUnit struct {
	stride  int
	branch1 *nn.Sequential // only for stride 2
	branch2 *nn.Sequential
}

var _ nn.Module = (*shuffleUnit)(nil)

// newShuffleUnit builds a unit with `in` input channels producing `out`
// output channels. For stride 1, out must equal in (and be even); for
// stride 2, each branch produces out/2 channels.
func newShuffleUnit(in, out, stride int, rng *rand.Rand) *shuffleUnit {
	u := &shuffleUnit{stride: stride}
	if stride == 1 {
		if in != out || in%2 != 0 {
			panic("model: stride-1 shuffle unit needs even in == out")
		}
		half := in / 2
		u.branch2 = nn.NewSequential(
			nn.NewConv2d(half, half, 1, 1, 0, false, rng),
			nn.NewBatchNorm2d(half),
			nn.ReLU{},
			nn.NewDepthwiseConv2d(half, 3, 1, 1, false, rng),
			nn.NewBatchNorm2d(half),
			nn.NewConv2d(half, half, 1, 1, 0, false, rng),
			nn.NewBatchNorm2d(half),
			nn.ReLU{},
		)
		return u
	}
	if out%2 != 0 {
		panic("model: stride-2 shuffle unit needs even out")
	}
	half := out / 2
	u.branch1 = nn.NewSequential(
		nn.NewDepthwiseConv2d(in, 3, 2, 1, false, rng),
		nn.NewBatchNorm2d(in),
		nn.NewConv2d(in, half, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(half),
		nn.ReLU{},
	)
	u.branch2 = nn.NewSequential(
		nn.NewConv2d(in, half, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(half),
		nn.ReLU{},
		nn.NewDepthwiseConv2d(half, 3, 2, 1, false, rng),
		nn.NewBatchNorm2d(half),
		nn.NewConv2d(half, half, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(half),
		nn.ReLU{},
	)
	return u
}

// Forward implements nn.Module.
func (u *shuffleUnit) Forward(x *ag.Variable) *ag.Variable {
	var a, b *ag.Variable
	if u.stride == 1 {
		c := x.Shape()[1]
		a, b = ag.SplitChannels(x, c/2)
		b = u.branch2.Forward(b)
	} else {
		a = u.branch1.Forward(x)
		b = u.branch2.Forward(x)
	}
	return ag.ChannelShuffle(ag.ConcatChannels(a, b), 2)
}

// Params implements nn.Module.
func (u *shuffleUnit) Params() []*ag.Variable {
	var ps []*ag.Variable
	if u.branch1 != nil {
		ps = append(ps, u.branch1.Params()...)
	}
	return append(ps, u.branch2.Params()...)
}

// SetTraining implements nn.Module.
func (u *shuffleUnit) SetTraining(t bool) {
	if u.branch1 != nil {
		u.branch1.SetTraining(t)
	}
	u.branch2.SetTraining(t)
}

// VisitState implements nn.Module.
func (u *shuffleUnit) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	if u.branch1 != nil {
		u.branch1.VisitState(prefix+".b1", fn)
	}
	u.branch2.VisitState(prefix+".b2", fn)
}

// buildShuffleNet assembles a scaled-down ShuffleNetV2: stem → two stages
// of (downsample unit + basic unit) → 1×1 head → GAP → classifier. mult is
// the paper's "net size" (0.5 / 1.0).
func buildShuffleNet(in Shape, classes int, rng *rand.Rand, mult float64) nn.Module {
	c0 := scaleCh(12, mult)
	c1 := scaleCh(24, mult)
	c2 := scaleCh(48, mult)
	head := scaleCh(64, mult)
	return nn.NewSequential(
		nn.NewConv2d(in.C, c0, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(c0),
		nn.ReLU{},
		newShuffleUnit(c0, c1, 2, rng),
		newShuffleUnit(c1, c1, 1, rng),
		newShuffleUnit(c1, c2, 2, rng),
		newShuffleUnit(c2, c2, 1, rng),
		nn.NewConv2d(c2, head, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(head),
		nn.ReLU{},
		nn.GlobalAvgPool{},
		nn.NewLinear(head, classes, true, rng),
	)
}
