package model

import (
	"testing"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

var (
	smallShape = Shape{C: 1, H: 16, W: 16}
	cifarShape = Shape{C: 3, H: 16, W: 16}
)

func TestBuildAllArchitecturesForwardShape(t *testing.T) {
	const classes = 10
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, in := range []Shape{smallShape, cifarShape} {
				rng := tensor.NewRand(1)
				m, err := Build(name, in, classes, rng)
				if err != nil {
					t.Fatal(err)
				}
				x := tensor.New(2, in.C, in.H, in.W)
				tensor.FillNormal(x, 0, 1, tensor.NewRand(2))
				y := m.Forward(ag.Const(x))
				s := y.Shape()
				if len(s) != 2 || s[0] != 2 || s[1] != classes {
					t.Fatalf("%s(%v) output shape %v, want (2,%d)", name, in, s, classes)
				}
				if !y.Value().IsFinite() {
					t.Fatalf("%s produced non-finite logits", name)
				}
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	rng := tensor.NewRand(1)
	if _, err := Build("nope", smallShape, 10, rng); err == nil {
		t.Fatal("want error for unknown architecture")
	}
	if _, err := Build("cnn", Shape{C: 1, H: 10, W: 10}, 10, rng); err == nil {
		t.Fatal("want error for spatial size not divisible by 4")
	}
	if _, err := Build("cnn", smallShape, 1, rng); err == nil {
		t.Fatal("want error for single class")
	}
}

func TestZooHeterogeneity(t *testing.T) {
	// The zoo must contain genuinely different architectures: pairwise
	// different parameter counts (that is what FedZKT must bridge).
	counts := make(map[string]int)
	for _, name := range CIFARZoo() {
		m := MustBuild(name, cifarShape, 10, tensor.NewRand(3))
		counts[name] = nn.NumParams(m)
	}
	seen := make(map[int]string)
	for name, c := range counts {
		if other, dup := seen[c]; dup {
			t.Fatalf("%s and %s have identical parameter counts (%d)", name, other, c)
		}
		seen[c] = name
		if c < 500 {
			t.Fatalf("%s suspiciously small: %d params", name, c)
		}
	}
	// ShuffleNet 1.0 must be bigger than 0.5; MobileNet 0.8 bigger than 0.6.
	if counts["shufflenet-1.0"] <= counts["shufflenet-0.5"] {
		t.Fatal("net size multiplier did not scale shufflenet")
	}
	if counts["mobilenet-0.8"] <= counts["mobilenet-0.6"] {
		t.Fatal("width multiplier did not scale mobilenet")
	}
}

func TestGlobalModelLargerThanDevices(t *testing.T) {
	g := nn.NumParams(MustBuild("global", cifarShape, 10, tensor.NewRand(4)))
	for _, name := range CIFARZoo() {
		d := nn.NumParams(MustBuild(name, cifarShape, 10, tensor.NewRand(4)))
		if g <= d {
			t.Fatalf("global model (%d params) not larger than %s (%d)", g, name, d)
		}
	}
}

func TestZooFor(t *testing.T) {
	zoo := []string{"a", "b", "c"}
	got := ZooFor(zoo, 7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("ZooFor = %v, want %v", got, want)
		}
	}
}

func TestGeneratorShapesAndRange(t *testing.T) {
	g := NewGenerator(32, cifarShape, tensor.NewRand(5))
	rng := tensor.NewRand(6)
	imgs := g.Generate(4, rng)
	s := imgs.Shape()
	if s[0] != 4 || s[1] != 3 || s[2] != 16 || s[3] != 16 {
		t.Fatalf("generator output shape %v", s)
	}
	for _, v := range imgs.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("generator output %v outside [-1,1]", v)
		}
	}
}

func TestGeneratorGradientFlowsToParams(t *testing.T) {
	g := NewGenerator(16, smallShape, tensor.NewRand(7))
	z := ag.Const(g.SampleZ(3, tensor.NewRand(8)))
	out := g.Forward(z)
	ag.Backward(ag.MeanAll(ag.Mul(out, out)))
	nonzero := false
	for _, p := range g.Params() {
		if p.Grad() != nil && tensor.Norm2(p.Grad()) > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("no gradient reached generator parameters")
	}
}

func TestModelStateRoundTripAcrossSeeds(t *testing.T) {
	// A state dict captured from one randomly initialised model must load
	// into an independently initialised instance of the same architecture —
	// the exact operation FedZKT's parameter download performs.
	for _, name := range []string{"mobilenet-0.6", "shufflenet-0.5", "lenet"} {
		a := MustBuild(name, cifarShape, 10, tensor.NewRand(10))
		b := MustBuild(name, cifarShape, 10, tensor.NewRand(20))
		if err := nn.LoadState(b, nn.CaptureState(a)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a.SetTraining(false)
		b.SetTraining(false)
		x := tensor.New(2, 3, 16, 16)
		tensor.FillNormal(x, 0, 1, tensor.NewRand(30))
		ya := a.Forward(ag.Const(x)).Value()
		yb := b.Forward(ag.Const(x)).Value()
		if tensor.MaxAbsDiff(ya, yb) != 0 {
			t.Fatalf("%s: outputs differ after state transfer", name)
		}
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a := MustBuild("cnn", smallShape, 10, tensor.NewRand(99))
	b := MustBuild("cnn", smallShape, 10, tensor.NewRand(99))
	sa, sb := nn.CaptureState(a), nn.CaptureState(b)
	for name, ta := range sa {
		if tensor.MaxAbsDiff(ta, sb[name]) != 0 {
			t.Fatalf("same seed produced different init for %s", name)
		}
	}
}
