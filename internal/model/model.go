// Package model provides the on-device and server model zoo used in the
// FedZKT evaluation: for the small (1-channel) datasets a CNN, an MLP and
// three LeNet-like models of different capacities; for the CIFAR-like
// (3-channel) datasets ShuffleNetV2-like units at net sizes 0.5/1.0,
// MobileNetV2-like inverted residuals at width multipliers 0.6/0.8, and a
// LeNet — mirroring the paper's Table V (Models A–E). It also provides the
// server's global model and the DCGAN-style generator used for zero-shot
// distillation.
//
// All architectures are scaled to small synthetic images (spatial size
// divisible by 4, default 16×16); the property under test — heterogeneous
// topologies with widely differing parameter counts — is preserved.
package model

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"github.com/fedzkt/fedzkt/internal/nn"
)

// Shape describes network input as channels × height × width.
type Shape struct {
	C, H, W int
}

// Numel returns C*H*W.
func (s Shape) Numel() int { return s.C * s.H * s.W }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// builder constructs a model for the given input shape and class count.
type builder func(in Shape, classes int, rng *rand.Rand) nn.Module

// registry maps spec names to builders. Populated at package init from the
// static table below (never mutated afterwards, so no locking is needed).
var registry = map[string]builder{
	"mlp":            buildMLP,
	"cnn":            buildCNN,
	"lenet-s":        func(in Shape, c int, r *rand.Rand) nn.Module { return buildLeNet(in, c, r, 4, 8, 32) },
	"lenet-m":        func(in Shape, c int, r *rand.Rand) nn.Module { return buildLeNet(in, c, r, 6, 16, 48) },
	"lenet-l":        func(in Shape, c int, r *rand.Rand) nn.Module { return buildLeNet(in, c, r, 8, 24, 64) },
	"lenet":          func(in Shape, c int, r *rand.Rand) nn.Module { return buildLeNet(in, c, r, 6, 16, 48) },
	"shufflenet-0.5": func(in Shape, c int, r *rand.Rand) nn.Module { return buildShuffleNet(in, c, r, 0.5) },
	"shufflenet-1.0": func(in Shape, c int, r *rand.Rand) nn.Module { return buildShuffleNet(in, c, r, 1.0) },
	"mobilenet-0.6":  func(in Shape, c int, r *rand.Rand) nn.Module { return buildMobileNet(in, c, r, 0.6) },
	"mobilenet-0.8":  func(in Shape, c int, r *rand.Rand) nn.Module { return buildMobileNet(in, c, r, 0.8) },
	"global":         buildGlobal,
}

// Build constructs the named architecture. The name must be one of Names().
func Build(name string, in Shape, classes int, rng *rand.Rand) (nn.Module, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown architecture %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	if classes < 2 {
		return nil, fmt.Errorf("model: need at least 2 classes, got %d", classes)
	}
	if in.C <= 0 || in.H < 4 || in.W < 4 || in.H%4 != 0 || in.W%4 != 0 {
		return nil, fmt.Errorf("model: input shape %v must have positive channels and spatial size divisible by 4", in)
	}
	return b(in, classes, rng), nil
}

// MustBuild is Build for static specs that cannot fail at runtime.
func MustBuild(name string, in Shape, classes int, rng *rand.Rand) nn.Module {
	m, err := Build(name, in, classes, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists the registered architectures in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SmallZoo returns the five heterogeneous on-device architectures the paper
// uses for MNIST/KMNIST/FASHION: a CNN, a fully-connected model, and three
// LeNet-like models with different channel sizes and layer counts.
func SmallZoo() []string {
	return []string{"cnn", "mlp", "lenet-s", "lenet-m", "lenet-l"}
}

// CIFARZoo returns the five heterogeneous architectures for CIFAR-10
// matching Table V: Models A–E = ShuffleNetV2(0.5), ShuffleNetV2(1.0),
// MobileNetV2(0.8), MobileNetV2(0.6), LeNet.
func CIFARZoo() []string {
	return []string{"shufflenet-0.5", "shufflenet-1.0", "mobilenet-0.8", "mobilenet-0.6", "lenet"}
}

// ZooFor assigns an architecture from zoo to each of k devices by cycling,
// as in the paper's 10-device configuration (A,B,C,D,E,A,B,...).
func ZooFor(zoo []string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = zoo[i%len(zoo)]
	}
	return out
}
