package model

import (
	"fmt"
	"math/rand/v2"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// Generator is the server-side generative model G(z;θ) that synthesises
// distillation inputs from Gaussian noise (paper §III-B1). It follows the
// DCGAN-style decoder used in data-free adversarial distillation: a linear
// stem projecting z to a low-resolution feature map, two nearest-neighbour
// upsampling stages with convolution + batch-norm + LeakyReLU, and a tanh
// output that keeps images in [-1, 1].
type Generator struct {
	ZDim int
	Out  Shape

	stem    *nn.Linear
	stemBN  *nn.BatchNorm1d
	decoder *nn.Sequential
	h4, w4  int
	c0      int
}

var _ nn.Module = (*Generator)(nil)

// NewGenerator builds a generator producing images of shape out from
// zDim-dimensional noise. out's spatial size must be divisible by 4.
func NewGenerator(zDim int, out Shape, rng *rand.Rand) *Generator {
	if out.H%4 != 0 || out.W%4 != 0 {
		panic(fmt.Sprintf("model: generator output %v must have spatial size divisible by 4", out))
	}
	const c0 = 64
	h4, w4 := out.H/4, out.W/4
	g := &Generator{
		ZDim:   zDim,
		Out:    out,
		stem:   nn.NewLinear(zDim, c0*h4*w4, true, rng),
		stemBN: nn.NewBatchNorm1d(c0 * h4 * w4),
		h4:     h4,
		w4:     w4,
		c0:     c0,
	}
	g.decoder = nn.NewSequential(
		nn.Upsample2x{},
		nn.NewConv2d(c0, 32, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(32),
		nn.LeakyReLU{Alpha: 0.2},
		nn.Upsample2x{},
		nn.NewConv2d(32, 16, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(16),
		nn.LeakyReLU{Alpha: 0.2},
		nn.NewConv2d(16, out.C, 3, 1, 1, true, rng),
		nn.Tanh{},
	)
	return g
}

// Forward maps noise z of shape (N, ZDim) to images (N, C, H, W).
func (g *Generator) Forward(z *ag.Variable) *ag.Variable {
	if z.Shape()[1] != g.ZDim {
		panic(fmt.Sprintf("model: generator got z dim %d, want %d", z.Shape()[1], g.ZDim))
	}
	n := z.Shape()[0]
	h := g.stem.Forward(z)
	h = g.stemBN.Forward(h)
	h = ag.LeakyReLU(h, 0.2)
	h = ag.Reshape(h, n, g.c0, g.h4, g.w4)
	return g.decoder.Forward(h)
}

// SampleZ draws an (n × ZDim) batch of standard Gaussian noise.
func (g *Generator) SampleZ(n int, rng *rand.Rand) *tensor.Tensor {
	return g.SampleZIn(nil, n, rng)
}

// SampleZIn is SampleZ drawing the noise tensor from the given step-scoped
// arena (nil falls back to the heap). The draw sequence from rng is
// identical either way.
func (g *Generator) SampleZIn(a *tensor.Arena, n int, rng *rand.Rand) *tensor.Tensor {
	z := a.NewRaw(n, g.ZDim)
	tensor.FillNormal(z, 0, 1, rng)
	return z
}

// Generate runs the generator without building tape state, for evaluation
// and for the device-bound distillation phase where G is fixed.
func (g *Generator) Generate(n int, rng *rand.Rand) *tensor.Tensor {
	return g.Forward(ag.Const(g.SampleZ(n, rng))).Value()
}

// Params implements nn.Module.
func (g *Generator) Params() []*ag.Variable {
	ps := g.stem.Params()
	ps = append(ps, g.stemBN.Params()...)
	return append(ps, g.decoder.Params()...)
}

// SetTraining implements nn.Module.
func (g *Generator) SetTraining(t bool) {
	g.stem.SetTraining(t)
	g.stemBN.SetTraining(t)
	g.decoder.SetTraining(t)
}

// VisitState implements nn.Module.
func (g *Generator) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	g.stem.VisitState(prefix+".stem", fn)
	g.stemBN.VisitState(prefix+".stem_bn", fn)
	g.decoder.VisitState(prefix+".dec", fn)
}
