package model

import (
	"math/rand/v2"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/nn"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// invertedResidual is the MobileNetV2 building block: 1×1 expansion →
// depthwise 3×3 → 1×1 linear projection, with a residual connection when
// the block preserves shape.
type invertedResidual struct {
	expand  *nn.Sequential // 1x1 conv + BN + ReLU6 (nil when expansion == 1)
	dw      *nn.Sequential // depthwise 3x3 + BN + ReLU6
	project *nn.Sequential // 1x1 conv + BN (linear bottleneck)
	useRes  bool
}

var _ nn.Module = (*invertedResidual)(nil)

func newInvertedResidual(in, out, stride, expansion int, rng *rand.Rand) *invertedResidual {
	hidden := in * expansion
	b := &invertedResidual{useRes: stride == 1 && in == out}
	if expansion != 1 {
		b.expand = nn.NewSequential(
			nn.NewConv2d(in, hidden, 1, 1, 0, false, rng),
			nn.NewBatchNorm2d(hidden),
			nn.ReLU6{},
		)
	}
	b.dw = nn.NewSequential(
		nn.NewDepthwiseConv2d(hidden, 3, stride, 1, false, rng),
		nn.NewBatchNorm2d(hidden),
		nn.ReLU6{},
	)
	b.project = nn.NewSequential(
		nn.NewConv2d(hidden, out, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(out),
	)
	return b
}

// Forward implements nn.Module.
func (b *invertedResidual) Forward(x *ag.Variable) *ag.Variable {
	h := x
	if b.expand != nil {
		h = b.expand.Forward(h)
	}
	h = b.dw.Forward(h)
	h = b.project.Forward(h)
	if b.useRes {
		h = ag.Add(h, x)
	}
	return h
}

// Params implements nn.Module.
func (b *invertedResidual) Params() []*ag.Variable {
	var ps []*ag.Variable
	if b.expand != nil {
		ps = append(ps, b.expand.Params()...)
	}
	ps = append(ps, b.dw.Params()...)
	return append(ps, b.project.Params()...)
}

// SetTraining implements nn.Module.
func (b *invertedResidual) SetTraining(t bool) {
	if b.expand != nil {
		b.expand.SetTraining(t)
	}
	b.dw.SetTraining(t)
	b.project.SetTraining(t)
}

// VisitState implements nn.Module.
func (b *invertedResidual) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	if b.expand != nil {
		b.expand.VisitState(prefix+".expand", fn)
	}
	b.dw.VisitState(prefix+".dw", fn)
	b.project.VisitState(prefix+".project", fn)
}

// scaleCh applies a width multiplier and rounds to an even channel count
// of at least 4 (even so ShuffleNet splits stay valid when reused).
func scaleCh(base int, mult float64) int {
	c := int(float64(base)*mult + 0.5)
	if c < 4 {
		c = 4
	}
	if c%2 == 1 {
		c++
	}
	return c
}

// buildMobileNet assembles a scaled-down MobileNetV2: stem → four inverted
// residual blocks (two spatial reductions) → 1×1 head → GAP → classifier.
// mult is the paper's width multiplier (0.6 / 0.8).
func buildMobileNet(in Shape, classes int, rng *rand.Rand, mult float64) nn.Module {
	c0 := scaleCh(16, mult)
	c1 := scaleCh(24, mult)
	c2 := scaleCh(40, mult)
	head := scaleCh(64, mult)
	return nn.NewSequential(
		// Stem.
		nn.NewConv2d(in.C, c0, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d(c0),
		nn.ReLU6{},
		// Stage 1: downsample then refine.
		newInvertedResidual(c0, c1, 2, 4, rng),
		newInvertedResidual(c1, c1, 1, 4, rng),
		// Stage 2: downsample then refine.
		newInvertedResidual(c1, c2, 2, 4, rng),
		newInvertedResidual(c2, c2, 1, 4, rng),
		// Head.
		nn.NewConv2d(c2, head, 1, 1, 0, false, rng),
		nn.NewBatchNorm2d(head),
		nn.ReLU6{},
		nn.GlobalAvgPool{},
		nn.NewLinear(head, classes, true, rng),
	)
}
