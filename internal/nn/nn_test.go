package nn

import (
	"strings"
	"testing"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := tensor.NewRand(1)
	l := NewLinear(4, 3, true, rng)
	x := ag.Const(tensor.New(5, 4))
	y := l.Forward(x)
	if s := y.Shape(); s[0] != 5 || s[1] != 3 {
		t.Fatalf("Linear output shape %v", s)
	}
	if n := NumParams(l); n != 4*3+3 {
		t.Fatalf("NumParams = %d, want 15", n)
	}
	lnb := NewLinear(4, 3, false, rng)
	if n := NumParams(lnb); n != 12 {
		t.Fatalf("NumParams (no bias) = %d, want 12", n)
	}
}

func TestConvShapes(t *testing.T) {
	rng := tensor.NewRand(2)
	c := NewConv2d(3, 8, 3, 2, 1, true, rng)
	x := ag.Const(tensor.New(2, 3, 8, 8))
	y := c.Forward(x)
	s := y.Shape()
	if s[0] != 2 || s[1] != 8 || s[2] != 4 || s[3] != 4 {
		t.Fatalf("Conv2d output shape %v", s)
	}
	d := NewDepthwiseConv2d(8, 3, 1, 1, false, rng)
	y2 := d.Forward(y)
	s2 := y2.Shape()
	if s2[1] != 8 || s2[2] != 4 {
		t.Fatalf("DW output shape %v", s2)
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := tensor.NewRand(3)
	l := NewLinear(100, 50, false, rng)
	bound := 0.2 // sqrt(6/150) ≈ 0.2
	for _, v := range l.W.Value().Data() {
		if v < -bound-1e-9 || v > bound+1e-9 {
			t.Fatalf("Glorot init out of range: %v (bound %v)", v, bound)
		}
	}
	// And not all zero.
	if tensor.Norm2(l.W.Value()) == 0 {
		t.Fatal("weights all zero")
	}
}

func TestSequentialForwardAndStateNames(t *testing.T) {
	rng := tensor.NewRand(4)
	m := NewSequential(
		NewConv2d(1, 4, 3, 1, 1, false, rng),
		NewBatchNorm2d(4),
		ReLU{},
		MaxPool2d{K: 2, Stride: 2},
		Flatten{},
		NewLinear(4*4*4, 10, true, rng),
	)
	x := ag.Const(tensor.New(3, 1, 8, 8))
	y := m.Forward(x)
	if s := y.Shape(); s[0] != 3 || s[1] != 10 {
		t.Fatalf("output shape %v", s)
	}
	sd := CaptureState(m)
	// conv w, bn gamma/beta/run_mean/run_var, linear w/b = 7 entries.
	if len(sd) != 7 {
		t.Fatalf("state entries = %d, want 7: %v", len(sd), sd.Names())
	}
	for _, n := range sd.Names() {
		if !strings.Contains(n, ".") {
			t.Fatalf("state name %q not namespaced", n)
		}
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := tensor.NewRand(5)
	m := NewSequential(
		NewConv2d(2, 3, 3, 1, 1, true, rng),
		NewBatchNorm2d(3),
		ReLU{},
		Flatten{},
		NewLinear(3*6*6, 5, true, rng),
	)
	// Mutate running stats so they are nontrivial.
	m.Forward(ag.Const(tensor.Full(0.5, 2, 2, 6, 6)))

	src := CaptureState(m)
	enc, err := EncodeState(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}

	m2 := NewSequential(
		NewConv2d(2, 3, 3, 1, 1, true, tensor.NewRand(99)),
		NewBatchNorm2d(3),
		ReLU{},
		Flatten{},
		NewLinear(3*6*6, 5, true, tensor.NewRand(98)),
	)
	if err := LoadState(m2, dec); err != nil {
		t.Fatal(err)
	}
	for name, want := range src {
		got := CaptureState(m2)[name]
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Fatalf("state %q differs after round trip", name)
		}
	}

	// Forward passes now agree.
	m.SetTraining(false)
	m2.SetTraining(false)
	x := ag.Const(tensor.Full(0.3, 1, 2, 6, 6))
	y1 := m.Forward(x).Value()
	y2 := m2.Forward(x).Value()
	if tensor.MaxAbsDiff(y1, y2) != 0 {
		t.Fatal("models disagree after state transfer")
	}
}

func TestLoadStateErrors(t *testing.T) {
	rng := tensor.NewRand(6)
	m := NewLinear(3, 2, true, rng)
	sd := CaptureState(m).Clone()

	delete(sd, "b")
	if err := LoadState(m, sd); err == nil {
		t.Fatal("want error for missing entry")
	}

	sd = CaptureState(m).Clone()
	sd["extra"] = tensor.New(1)
	if err := LoadState(m, sd); err == nil {
		t.Fatal("want error for extra entry")
	}

	sd = CaptureState(m).Clone()
	sd["w"] = tensor.New(1)
	if err := LoadState(m, sd); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

func TestDecodeStateCorrupt(t *testing.T) {
	if _, err := DecodeState([]byte("not gob")); err == nil {
		t.Fatal("want error for corrupt bytes")
	}
}

func TestBatchNormTrainEvalMode(t *testing.T) {
	bn := NewBatchNorm2d(2)
	x := ag.Const(tensor.Full(3, 4, 2, 2, 2))
	bn.SetTraining(true)
	bn.Forward(x)
	if bn.RunMean.Data()[0] == 0 {
		t.Fatal("training forward must update running mean")
	}
	rm := bn.RunMean.Clone()
	bn.SetTraining(false)
	bn.Forward(x)
	if tensor.MaxAbsDiff(rm, bn.RunMean) != 0 {
		t.Fatal("eval forward must not update running stats")
	}
}

func TestSetTrainableFreezesParams(t *testing.T) {
	rng := tensor.NewRand(7)
	m := NewLinear(3, 2, true, rng)
	SetTrainable(m, false)
	x := ag.Param(tensor.Full(1, 1, 3))
	loss := ag.MeanAll(m.Forward(x))
	ag.Backward(loss)
	if m.W.Grad() != nil {
		t.Fatal("frozen parameter accumulated gradient")
	}
	if x.Grad() == nil {
		t.Fatal("gradient should flow through frozen layer to input")
	}
}

// Compile-time interface compliance checks for every layer type.
var (
	_ Module = (*Linear)(nil)
	_ Module = (*Conv2d)(nil)
	_ Module = (*DepthwiseConv2d)(nil)
	_ Module = (*BatchNorm2d)(nil)
	_ Module = (*BatchNorm1d)(nil)
	_ Module = ReLU{}
	_ Module = ReLU6{}
	_ Module = LeakyReLU{}
	_ Module = Tanh{}
	_ Module = Sigmoid{}
	_ Module = MaxPool2d{}
	_ Module = AvgPool2d{}
	_ Module = GlobalAvgPool{}
	_ Module = Flatten{}
	_ Module = Upsample2x{}
	_ Module = (*Sequential)(nil)
)
