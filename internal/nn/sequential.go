package nn

import (
	"strconv"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// Sequential chains modules, feeding each one's output to the next.
type Sequential struct {
	mods []Module
}

// NewSequential builds a Sequential over the given modules.
func NewSequential(mods ...Module) *Sequential {
	return &Sequential{mods: append([]Module(nil), mods...)}
}

// Append adds more modules to the end of the chain.
func (s *Sequential) Append(mods ...Module) { s.mods = append(s.mods, mods...) }

// Len returns the number of child modules.
func (s *Sequential) Len() int { return len(s.mods) }

// Forward implements Module.
func (s *Sequential) Forward(x *ag.Variable) *ag.Variable {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Params implements Module.
func (s *Sequential) Params() []*ag.Variable {
	var ps []*ag.Variable
	for _, m := range s.mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// SetTraining implements Module.
func (s *Sequential) SetTraining(t bool) {
	for _, m := range s.mods {
		m.SetTraining(t)
	}
}

// VisitState implements Module; children are namespaced by their index.
func (s *Sequential) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	for i, m := range s.mods {
		m.VisitState(join(prefix, strconv.Itoa(i)), fn)
	}
}
