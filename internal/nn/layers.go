package nn

import (
	"math/rand/v2"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// Linear is a fully-connected layer computing x·Wᵀ + b.
type Linear struct {
	W *ag.Variable // (out × in)
	B *ag.Variable // (out), nil when bias is disabled
}

// NewLinear constructs a Glorot-initialised fully-connected layer.
func NewLinear(in, out int, bias bool, rng *rand.Rand) *Linear {
	w := tensor.New(out, in)
	tensor.FillGlorot(w, in, out, rng)
	l := &Linear{W: ag.Param(w)}
	if bias {
		l.B = ag.Param(tensor.New(out))
	}
	return l
}

// Forward implements Module.
func (l *Linear) Forward(x *ag.Variable) *ag.Variable { return ag.Linear(x, l.W, l.B) }

// Params implements Module.
func (l *Linear) Params() []*ag.Variable {
	if l.B == nil {
		return []*ag.Variable{l.W}
	}
	return []*ag.Variable{l.W, l.B}
}

// SetTraining implements Module (stateless with respect to mode).
func (l *Linear) SetTraining(bool) {}

// VisitState implements Module.
func (l *Linear) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	fn(join(prefix, "w"), l.W.Value())
	if l.B != nil {
		fn(join(prefix, "b"), l.B.Value())
	}
}

// Conv2d is a 2-D convolution layer.
type Conv2d struct {
	W      *ag.Variable // (out, in, k, k)
	B      *ag.Variable // (out), nil when bias is disabled
	Stride int
	Pad    int
}

// NewConv2d constructs a Glorot-initialised convolution layer with square
// kernels.
func NewConv2d(inC, outC, k, stride, pad int, bias bool, rng *rand.Rand) *Conv2d {
	w := tensor.New(outC, inC, k, k)
	tensor.FillGlorot(w, inC*k*k, outC*k*k, rng)
	c := &Conv2d{W: ag.Param(w), Stride: stride, Pad: pad}
	if bias {
		c.B = ag.Param(tensor.New(outC))
	}
	return c
}

// Forward implements Module.
func (c *Conv2d) Forward(x *ag.Variable) *ag.Variable {
	return ag.Conv2d(x, c.W, c.B, c.Stride, c.Pad)
}

// Params implements Module.
func (c *Conv2d) Params() []*ag.Variable {
	if c.B == nil {
		return []*ag.Variable{c.W}
	}
	return []*ag.Variable{c.W, c.B}
}

// SetTraining implements Module.
func (c *Conv2d) SetTraining(bool) {}

// VisitState implements Module.
func (c *Conv2d) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	fn(join(prefix, "w"), c.W.Value())
	if c.B != nil {
		fn(join(prefix, "b"), c.B.Value())
	}
}

// DepthwiseConv2d convolves each channel with its own kernel (groups ==
// channels), the core of MobileNet/ShuffleNet blocks.
type DepthwiseConv2d struct {
	W      *ag.Variable // (C, k, k)
	B      *ag.Variable // (C), nil when bias is disabled
	Stride int
	Pad    int
}

// NewDepthwiseConv2d constructs a Glorot-initialised depthwise convolution.
func NewDepthwiseConv2d(channels, k, stride, pad int, bias bool, rng *rand.Rand) *DepthwiseConv2d {
	w := tensor.New(channels, k, k)
	tensor.FillGlorot(w, k*k, k*k, rng)
	d := &DepthwiseConv2d{W: ag.Param(w), Stride: stride, Pad: pad}
	if bias {
		d.B = ag.Param(tensor.New(channels))
	}
	return d
}

// Forward implements Module.
func (d *DepthwiseConv2d) Forward(x *ag.Variable) *ag.Variable {
	return ag.DepthwiseConv2d(x, d.W, d.B, d.Stride, d.Pad)
}

// Params implements Module.
func (d *DepthwiseConv2d) Params() []*ag.Variable {
	if d.B == nil {
		return []*ag.Variable{d.W}
	}
	return []*ag.Variable{d.W, d.B}
}

// SetTraining implements Module.
func (d *DepthwiseConv2d) SetTraining(bool) {}

// VisitState implements Module.
func (d *DepthwiseConv2d) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	fn(join(prefix, "w"), d.W.Value())
	if d.B != nil {
		fn(join(prefix, "b"), d.B.Value())
	}
}

// BatchNorm2d normalises (N,C,H,W) activations per channel with learnable
// scale and shift and tracked running statistics.
type BatchNorm2d struct {
	Gamma    *ag.Variable
	Beta     *ag.Variable
	RunMean  *tensor.Tensor
	RunVar   *tensor.Tensor
	Momentum float64
	Eps      float64
	training bool
}

// NewBatchNorm2d constructs a BatchNorm2d over c channels with γ=1, β=0,
// running mean 0 and running variance 1.
func NewBatchNorm2d(c int) *BatchNorm2d {
	return &BatchNorm2d{
		Gamma:    ag.Param(tensor.Full(1, c)),
		Beta:     ag.Param(tensor.New(c)),
		RunMean:  tensor.New(c),
		RunVar:   tensor.Full(1, c),
		Momentum: 0.1,
		Eps:      1e-5,
		training: true,
	}
}

// Forward implements Module.
func (b *BatchNorm2d) Forward(x *ag.Variable) *ag.Variable {
	return ag.BatchNorm2d(x, b.Gamma, b.Beta, b.RunMean, b.RunVar, b.training, b.Momentum, b.Eps)
}

// Params implements Module.
func (b *BatchNorm2d) Params() []*ag.Variable { return []*ag.Variable{b.Gamma, b.Beta} }

// SetTraining implements Module.
func (b *BatchNorm2d) SetTraining(t bool) { b.training = t }

// VisitState implements Module.
func (b *BatchNorm2d) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	fn(join(prefix, "gamma"), b.Gamma.Value())
	fn(join(prefix, "beta"), b.Beta.Value())
	fn(join(prefix, "run_mean"), b.RunMean)
	fn(join(prefix, "run_var"), b.RunVar)
}

// BatchNorm1d normalises (N,D) activations per feature.
type BatchNorm1d struct {
	bn BatchNorm2d
}

// NewBatchNorm1d constructs a BatchNorm1d over d features.
func NewBatchNorm1d(d int) *BatchNorm1d {
	return &BatchNorm1d{bn: *NewBatchNorm2d(d)}
}

// Forward implements Module.
func (b *BatchNorm1d) Forward(x *ag.Variable) *ag.Variable {
	return ag.BatchNorm1d(x, b.bn.Gamma, b.bn.Beta, b.bn.RunMean, b.bn.RunVar, b.bn.training, b.bn.Momentum, b.bn.Eps)
}

// Params implements Module.
func (b *BatchNorm1d) Params() []*ag.Variable { return b.bn.Params() }

// SetTraining implements Module.
func (b *BatchNorm1d) SetTraining(t bool) { b.bn.SetTraining(t) }

// VisitState implements Module.
func (b *BatchNorm1d) VisitState(prefix string, fn func(string, *tensor.Tensor)) {
	b.bn.VisitState(prefix, fn)
}

// stateless embeds no-op Module plumbing for layers without state.
type stateless struct{}

func (stateless) Params() []*ag.Variable                          { return nil }
func (stateless) SetTraining(bool)                                {}
func (stateless) VisitState(string, func(string, *tensor.Tensor)) {}

// ReLU applies max(x,0).
type ReLU struct{ stateless }

// Forward implements Module.
func (ReLU) Forward(x *ag.Variable) *ag.Variable { return ag.ReLU(x) }

// ReLU6 applies min(max(x,0),6).
type ReLU6 struct{ stateless }

// Forward implements Module.
func (ReLU6) Forward(x *ag.Variable) *ag.Variable { return ag.ReLU6(x) }

// LeakyReLU applies x>0 ? x : Alpha*x.
type LeakyReLU struct {
	stateless
	Alpha float64
}

// Forward implements Module.
func (l LeakyReLU) Forward(x *ag.Variable) *ag.Variable { return ag.LeakyReLU(x, l.Alpha) }

// Tanh applies the hyperbolic tangent.
type Tanh struct{ stateless }

// Forward implements Module.
func (Tanh) Forward(x *ag.Variable) *ag.Variable { return ag.Tanh(x) }

// Sigmoid applies the logistic function.
type Sigmoid struct{ stateless }

// Forward implements Module.
func (Sigmoid) Forward(x *ag.Variable) *ag.Variable { return ag.Sigmoid(x) }

// MaxPool2d applies k×k max pooling.
type MaxPool2d struct {
	stateless
	K, Stride int
}

// Forward implements Module.
func (p MaxPool2d) Forward(x *ag.Variable) *ag.Variable { return ag.MaxPool2d(x, p.K, p.Stride) }

// AvgPool2d applies k×k average pooling.
type AvgPool2d struct {
	stateless
	K, Stride int
}

// Forward implements Module.
func (p AvgPool2d) Forward(x *ag.Variable) *ag.Variable { return ag.AvgPool2d(x, p.K, p.Stride) }

// GlobalAvgPool reduces (N,C,H,W) to (N,C).
type GlobalAvgPool struct{ stateless }

// Forward implements Module.
func (GlobalAvgPool) Forward(x *ag.Variable) *ag.Variable { return ag.GlobalAvgPool(x) }

// Flatten reshapes (N,...) to (N,rest).
type Flatten struct{ stateless }

// Forward implements Module.
func (Flatten) Forward(x *ag.Variable) *ag.Variable { return ag.Flatten(x) }

// Upsample2x doubles spatial dimensions by nearest-neighbour replication.
type Upsample2x struct{ stateless }

// Forward implements Module.
func (Upsample2x) Forward(x *ag.Variable) *ag.Variable { return ag.Upsample2x(x) }
