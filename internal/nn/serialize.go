package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/fedzkt/fedzkt/internal/tensor"
)

// wireTensor is the gob wire form of a tensor.
type wireTensor struct {
	Shape []int
	Data  []float64
}

// wireState is the gob wire form of a state dict: parallel name/tensor
// slices in sorted-name order so encoding is deterministic.
type wireState struct {
	Names   []string
	Tensors []wireTensor
}

// EncodeState serializes a state dict to bytes (gob, deterministic order).
//
// This is the legacy dense wire form; the runtime's wire payloads,
// replica slots and checkpoints use the internal/codec container format
// instead, which is versioned, self-describing and supports quantised
// element encodings.
func EncodeState(sd StateDict) ([]byte, error) {
	names := sd.Names()
	ws := wireState{Names: names, Tensors: make([]wireTensor, len(names))}
	for i, n := range names {
		t := sd[n]
		ws.Tensors[i] = wireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ws); err != nil {
		return nil, fmt.Errorf("nn: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState deserializes bytes produced by EncodeState.
func DecodeState(b []byte) (StateDict, error) {
	var ws wireState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ws); err != nil {
		return nil, fmt.Errorf("nn: decoding state: %w", err)
	}
	if len(ws.Names) != len(ws.Tensors) {
		return nil, fmt.Errorf("nn: corrupt state: %d names for %d tensors", len(ws.Names), len(ws.Tensors))
	}
	sd := make(StateDict, len(ws.Names))
	for i, n := range ws.Names {
		wt := ws.Tensors[i]
		want := 1
		for _, d := range wt.Shape {
			if d <= 0 {
				return nil, fmt.Errorf("nn: corrupt state %q: bad shape %v", n, wt.Shape)
			}
			want *= d
		}
		if want != len(wt.Data) {
			return nil, fmt.Errorf("nn: corrupt state %q: shape %v does not match %d elements", n, wt.Shape, len(wt.Data))
		}
		if _, dup := sd[n]; dup {
			return nil, fmt.Errorf("nn: corrupt state: duplicate name %q", n)
		}
		sd[n] = tensor.FromSlice(wt.Data, wt.Shape...)
	}
	return sd, nil
}
