// Package nn provides neural-network layers on top of the ag autodiff
// engine: a Module interface, parameterised layers (Linear, Conv2d,
// DepthwiseConv2d, BatchNorm), activations, pooling, a Sequential
// container, and named state-dict capture/load for transporting model
// parameters between federated peers.
package nn

import (
	"fmt"
	"sort"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// Module is a composable network component.
type Module interface {
	// Forward applies the module to x, building autodiff tape state as
	// needed.
	Forward(x *ag.Variable) *ag.Variable
	// Params returns the module's trainable parameters in a stable order.
	Params() []*ag.Variable
	// SetTraining switches between training and evaluation behaviour
	// (batch statistics vs running statistics in BatchNorm).
	SetTraining(training bool)
	// VisitState walks all persistent state (parameters and buffers) with
	// stable, unique names under the given prefix.
	VisitState(prefix string, fn func(name string, t *tensor.Tensor))
}

// NumParams returns the total number of scalar trainable parameters.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value().Len()
	}
	return n
}

// SetTrainable toggles gradient accumulation on every parameter; used to
// freeze teacher models during server-side distillation while still
// letting gradients flow through them to the generator.
func SetTrainable(m Module, trainable bool) {
	for _, p := range m.Params() {
		p.SetRequiresGrad(trainable)
	}
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// StateDict maps state names to tensors. The tensors are references into
// the module (not copies); use Clone for a snapshot.
type StateDict map[string]*tensor.Tensor

// CaptureState collects references to all persistent state of m.
func CaptureState(m Module) StateDict {
	sd := make(StateDict)
	m.VisitState("", func(name string, t *tensor.Tensor) {
		if _, dup := sd[name]; dup {
			panic(fmt.Sprintf("nn: duplicate state name %q", name))
		}
		sd[name] = t
	})
	return sd
}

// Clone returns a deep copy of the state dict.
func (sd StateDict) Clone() StateDict {
	out := make(StateDict, len(sd))
	for k, v := range sd {
		out[k] = v.Clone()
	}
	return out
}

// Names returns the sorted state names, useful for deterministic encoding.
func (sd StateDict) Names() []string {
	names := make([]string, 0, len(sd))
	for k := range sd {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Numel returns the total number of scalars in the state dict.
func (sd StateDict) Numel() int {
	n := 0
	for _, t := range sd {
		n += t.Len()
	}
	return n
}

// LoadState copies src's values into m's state tensors. Every state entry
// of m must be present in src with a matching element count; extra entries
// in src are an error too, so drifted architectures fail loudly.
func LoadState(m Module, src StateDict) error {
	dst := CaptureState(m)
	if len(dst) != len(src) {
		return fmt.Errorf("nn: state dict size mismatch: model has %d entries, source has %d", len(dst), len(src))
	}
	for name, d := range dst {
		s, ok := src[name]
		if !ok {
			return fmt.Errorf("nn: state %q missing from source", name)
		}
		if d.Len() != s.Len() {
			return fmt.Errorf("nn: state %q length mismatch: %d vs %d", name, d.Len(), s.Len())
		}
		d.CopyFrom(s)
	}
	return nil
}

// join concatenates state-name components.
func join(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}
