package nn

import (
	"testing"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// swapTestModule builds a small module with both parameters and buffers
// (BatchNorm), so swaps must carry running statistics too.
func swapTestModule(seed uint64) Module {
	rng := tensor.NewRand(seed)
	return NewSequential(
		NewLinear(4, 8, true, rng),
		NewBatchNorm1d(8),
		ReLU{},
		NewLinear(8, 3, true, rng),
	)
}

func TestSwapStateRoundTrip(t *testing.T) {
	m := swapTestModule(1)
	orig := CaptureState(m).Clone()

	other := CaptureState(swapTestModule(2)).Clone()
	otherOrig := other.Clone()

	if err := SwapState(m, other); err != nil {
		t.Fatal(err)
	}
	// Module now holds the other state; the dict holds the module's.
	got := CaptureState(m)
	for name, want := range otherOrig {
		if tensor.MaxAbsDiff(got[name], want) != 0 {
			t.Fatalf("state %q not swapped into module", name)
		}
	}
	for name, want := range orig {
		if tensor.MaxAbsDiff(other[name], want) != 0 {
			t.Fatalf("state %q not swapped out to dict", name)
		}
	}
	// Swapping back restores the original exactly.
	if err := SwapState(m, other); err != nil {
		t.Fatal(err)
	}
	got = CaptureState(m)
	for name, want := range orig {
		if tensor.MaxAbsDiff(got[name], want) != 0 {
			t.Fatalf("state %q not restored by second swap", name)
		}
	}
}

// TestSwapStateVisibleThroughParams pins the property the shared-state
// replica design depends on: a swap changes the values seen through the
// module's existing Param variables (and thus optimisers bound to them)
// without re-binding anything.
func TestSwapStateVisibleThroughParams(t *testing.T) {
	m := swapTestModule(3)
	p := m.Params()[0]
	before := p.Value().Data()[0]

	other := CaptureState(swapTestModule(4)).Clone()
	if err := SwapState(m, other); err != nil {
		t.Fatal(err)
	}
	if p.Value().Data()[0] == before {
		t.Fatal("swap not visible through previously captured Param variable")
	}

	// A forward pass after the swap must use the swapped values.
	x := tensor.New(2, 4)
	x.Fill(1)
	m.SetTraining(false)
	y1 := m.Forward(ag.Const(x)).Value().Clone()
	if err := SwapState(m, other); err != nil {
		t.Fatal(err)
	}
	y2 := m.Forward(ag.Const(x)).Value()
	if tensor.MaxAbsDiff(y1, y2) == 0 {
		t.Fatal("forward outputs identical across different swapped states")
	}
}

func TestStateBindingRepeatedSwaps(t *testing.T) {
	m := swapTestModule(5)
	b := BindState(m)
	a := CaptureState(swapTestModule(6)).Clone()
	c := CaptureState(swapTestModule(7)).Clone()
	aOrig, cOrig := a.Clone(), c.Clone()

	for i := 0; i < 3; i++ {
		if err := b.Swap(a); err != nil {
			t.Fatal(err)
		}
		if err := b.Swap(a); err != nil { // restore
			t.Fatal(err)
		}
		if err := b.Swap(c); err != nil {
			t.Fatal(err)
		}
		if err := b.Swap(c); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range aOrig {
		if tensor.MaxAbsDiff(a[name], want) != 0 {
			t.Fatalf("dict a state %q corrupted by paired swaps", name)
		}
	}
	for name, want := range cOrig {
		if tensor.MaxAbsDiff(c[name], want) != 0 {
			t.Fatalf("dict c state %q corrupted by paired swaps", name)
		}
	}
}

func TestSwapStateErrors(t *testing.T) {
	m := swapTestModule(8)
	good := CaptureState(m).Clone()

	// Missing key.
	bad := good.Clone()
	name := bad.Names()[0]
	delete(bad, name)
	if err := SwapState(m, bad); err == nil {
		t.Fatal("want error for missing state name")
	}
	// Extra key (size mismatch).
	bad = good.Clone()
	bad["bogus"] = tensor.New(1)
	if err := SwapState(m, bad); err == nil {
		t.Fatal("want error for extra state name")
	}
	// Length mismatch must leave the module untouched.
	bad = good.Clone()
	bad[name] = tensor.New(1, 1)
	before := CaptureState(m).Clone()
	if err := SwapState(m, bad); err == nil {
		t.Fatal("want error for length mismatch")
	}
	after := CaptureState(m)
	for n, want := range before {
		if tensor.MaxAbsDiff(after[n], want) != 0 {
			t.Fatalf("failed swap mutated module state %q", n)
		}
	}
}

func TestStateDictLoadFrom(t *testing.T) {
	dst := CaptureState(swapTestModule(9)).Clone()
	src := CaptureState(swapTestModule(10)).Clone()
	if err := dst.LoadFrom(src); err != nil {
		t.Fatal(err)
	}
	for name, want := range src {
		if tensor.MaxAbsDiff(dst[name], want) != 0 {
			t.Fatalf("state %q not copied", name)
		}
	}
	// Mismatched keys fail loudly.
	bad := src.Clone()
	n := bad.Names()[0]
	bad["renamed"] = bad[n]
	delete(bad, n)
	if err := dst.LoadFrom(bad); err == nil {
		t.Fatal("want error for mismatched keys")
	}
	// Size mismatch fails loudly.
	short := src.Clone()
	delete(short, short.Names()[0])
	if err := dst.LoadFrom(short); err == nil {
		t.Fatal("want error for size mismatch")
	}
	// Length mismatch fails loudly.
	wrong := src.Clone()
	wrong[wrong.Names()[0]] = tensor.New(1)
	if err := dst.LoadFrom(wrong); err == nil {
		t.Fatal("want error for length mismatch")
	}
}
