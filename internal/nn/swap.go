package nn

import (
	"fmt"
	"sort"

	"github.com/fedzkt/fedzkt/internal/tensor"
)

// StateBinding pairs a module's persistent state tensors with their names
// once, so state dicts can be swapped in and out repeatedly without
// re-walking the module or allocating. It is the mechanism behind
// shared-state replica cohorts: one live module serves many devices, each
// device's parameters living in a plain StateDict until they are needed.
type StateBinding struct {
	names   []string
	tensors []*tensor.Tensor
}

// BindState captures references to m's persistent state (parameters and
// buffers) in sorted-name order. The binding stays valid for the lifetime
// of the module: the tensors are the module's own storage.
func BindState(m Module) *StateBinding {
	sd := CaptureState(m)
	names := sd.Names()
	b := &StateBinding{names: names, tensors: make([]*tensor.Tensor, len(names))}
	for i, n := range names {
		b.tensors[i] = sd[n]
	}
	return b
}

// Names returns the bound state names in sorted order.
func (b *StateBinding) Names() []string { return append([]string(nil), b.names...) }

// Swap exchanges the module's state values with sd's in place: after the
// call the module holds sd's former values and sd holds the module's. The
// exchange is O(#tensors) slice-header swaps — no element copying — so it
// is cheap enough to run per distillation iteration. sd must contain
// exactly the bound names with matching element counts; on error nothing
// has been exchanged.
func (b *StateBinding) Swap(sd StateDict) error {
	if len(sd) != len(b.names) {
		return fmt.Errorf("nn: swap state dict size mismatch: binding has %d entries, dict has %d", len(b.names), len(sd))
	}
	for i, n := range b.names {
		s, ok := sd[n]
		if !ok {
			return fmt.Errorf("nn: swap state %q missing from dict", n)
		}
		if s.Len() != b.tensors[i].Len() {
			return fmt.Errorf("nn: swap state %q length mismatch: %d vs %d", n, b.tensors[i].Len(), s.Len())
		}
	}
	for i, n := range b.names {
		b.tensors[i].SwapData(sd[n])
	}
	return nil
}

// SwapState exchanges m's persistent state values with sd in place (see
// StateBinding.Swap). Callers that swap repeatedly against the same module
// should hold a BindState binding instead.
func SwapState(m Module, sd StateDict) error {
	return BindState(m).Swap(sd)
}

// LoadFrom copies src's values into sd's tensors, with the same strict
// key/length validation as LoadState: both dicts must hold exactly the
// same names with matching element counts, so drifted architectures fail
// loudly. It is the dict-to-dict analogue used when device state lives in
// plain StateDict slots rather than a live module.
func (sd StateDict) LoadFrom(src StateDict) error {
	if len(sd) != len(src) {
		return fmt.Errorf("nn: state dict size mismatch: destination has %d entries, source has %d", len(sd), len(src))
	}
	// Deterministic iteration keeps error messages stable across runs.
	names := make([]string, 0, len(sd))
	for n := range sd {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s, ok := src[n]
		if !ok {
			return fmt.Errorf("nn: state %q missing from source", n)
		}
		if sd[n].Len() != s.Len() {
			return fmt.Errorf("nn: state %q length mismatch: %d vs %d", n, sd[n].Len(), s.Len())
		}
	}
	for _, n := range names {
		sd[n].CopyFrom(src[n])
	}
	return nil
}
