package nn

import (
	"testing"

	"github.com/fedzkt/fedzkt/internal/ag"
	"github.com/fedzkt/fedzkt/internal/tensor"
)

// buildAllLayers returns one instance of every parameterised layer wrapped
// in a Sequential, for cross-cutting invariant checks.
func buildAllLayers() *Sequential {
	rng := tensor.NewRand(1)
	return NewSequential(
		NewConv2d(1, 4, 3, 1, 1, true, rng),
		NewBatchNorm2d(4),
		ReLU{},
		NewDepthwiseConv2d(4, 3, 1, 1, true, rng),
		ReLU6{},
		MaxPool2d{K: 2, Stride: 2},
		Flatten{},
		NewLinear(4*4*4, 8, true, rng),
		Tanh{},
		NewLinear(8, 4, false, rng),
	)
}

// TestEveryParamAppearsInStateDict: parameters that the optimiser updates
// must all be captured by VisitState, or uploads would silently drop
// learned weights.
func TestEveryParamAppearsInStateDict(t *testing.T) {
	m := buildAllLayers()
	sd := CaptureState(m)
	byPtr := make(map[*tensor.Tensor]string, len(sd))
	for name, tt := range sd {
		byPtr[tt] = name
	}
	for i, p := range m.Params() {
		if _, ok := byPtr[p.Value()]; !ok {
			t.Fatalf("parameter %d is not reachable via VisitState", i)
		}
	}
}

// TestStateDictNamesUnique: duplicate names would corrupt uploads.
func TestStateDictNamesUnique(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("CaptureState panicked: %v", r)
		}
	}()
	m := NewSequential(buildAllLayers(), buildAllLayers())
	sd := CaptureState(m)
	// Two copies of the same stack: every entry must still be distinct.
	if len(sd) != 2*len(CaptureState(buildAllLayers())) {
		t.Fatalf("nested sequential lost state entries: %d", len(sd))
	}
}

// TestNumParamsMatchesStateDictTrainablePortion: NumParams counts exactly
// the trainable scalars (state dicts additionally hold BN running stats).
func TestNumParamsMatchesStateDict(t *testing.T) {
	m := buildAllLayers()
	nParams := NumParams(m)
	sd := CaptureState(m)
	// BN contributes 2 buffers of 4 channels = 8 extra scalars.
	if got := sd.Numel() - 8; got != nParams {
		t.Fatalf("NumParams=%d but state dict holds %d trainable scalars", nParams, got)
	}
}

// TestZeroGradsClearsAll: after a backward pass, ZeroGrads must reset every
// parameter gradient to zero.
func TestZeroGradsClearsAll(t *testing.T) {
	m := buildAllLayers()
	x := tensor.New(2, 1, 8, 8)
	tensor.FillNormal(x, 0, 1, tensor.NewRand(2))
	ag.Backward(ag.SumAll(m.Forward(ag.Const(x))))
	seen := false
	for _, p := range m.Params() {
		if g := p.Grad(); g != nil && tensor.Norm2(g) > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("backward produced no gradients at all")
	}
	ZeroGrads(m)
	for i, p := range m.Params() {
		if g := p.Grad(); g != nil && tensor.Norm2(g) != 0 {
			t.Fatalf("param %d grad not cleared", i)
		}
	}
}
