package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// arm parses and activates a plan for the duration of the test.
func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	Activate(p)
	t.Cleanup(Deactivate)
	return p
}

func TestParseGrammar(t *testing.T) {
	p, err := Parse("seed=42; spill.read.err=0.25 ;crash.round.end=on:3;ckpt.write.torn@128=on:1;transport.conn.drop=every:10;transport.conn.stall=after:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	for _, site := range []string{SiteSpillReadErr, SiteCrashRoundEnd, SiteCkptTorn, SiteConnDrop, SiteConnStall} {
		if !p.Armed(site) {
			t.Fatalf("site %s not armed", site)
		}
	}
	if p.Armed(SiteSpillWriteErr) {
		t.Fatal("unarmed site reported armed")
	}

	for _, bad := range []string{
		"no.such.site=0.5",                          // unknown site
		"spill.read.err",                            // not key=value
		"spill.read.err=2.0",                        // probability out of range
		"spill.read.err=on:0",                       // zero count
		"spill.read.err=maybe",                      // unparseable trigger
		"seed=abc",                                  // bad seed
		"ckpt.write.torn@x=on:1",                    // bad argument
		"crash.round.end=on:1;crash.round.end=on:2", // duplicate site
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestDisarmedFastPath(t *testing.T) {
	Deactivate()
	if Fire(SiteSpillReadErr) {
		t.Fatal("fired with no plan armed")
	}
	if err := Err(SiteSpillReadErr, "read"); err != nil {
		t.Fatal("injected error with no plan armed")
	}
	if d := StallFor(SiteConnStall); d != 0 {
		t.Fatal("stalled with no plan armed")
	}
	Crash(SiteCrashRoundEnd) // must not crash
}

func TestCountTriggers(t *testing.T) {
	arm(t, "spill.read.err=on:3;spill.write.err=every:2;transport.conn.drop=after:4")
	var onFires, everyFires, afterFires []int
	for i := 1; i <= 8; i++ {
		if Fire(SiteSpillReadErr) {
			onFires = append(onFires, i)
		}
		if Fire(SiteSpillWriteErr) {
			everyFires = append(everyFires, i)
		}
		if Fire(SiteConnDrop) {
			afterFires = append(afterFires, i)
		}
	}
	if len(onFires) != 1 || onFires[0] != 3 {
		t.Fatalf("on:3 fired at %v, want exactly [3]", onFires)
	}
	if want := []int{2, 4, 6, 8}; len(everyFires) != 4 || everyFires[0] != 2 || everyFires[3] != 8 {
		t.Fatalf("every:2 fired at %v, want %v", everyFires, want)
	}
	if len(afterFires) != 4 || afterFires[0] != 5 {
		t.Fatalf("after:4 fired at %v, want [5 6 7 8]", afterFires)
	}
}

// TestProbabilisticReplay: the probabilistic trigger is a pure function
// of (seed, site, hit index) — two plans with the same seed draw the
// same faults at the same hits, and a different seed draws differently.
func TestProbabilisticReplay(t *testing.T) {
	draw := func(seed string) []bool {
		p, err := Parse("seed=" + seed + ";spill.read.err=0.3")
		if err != nil {
			t.Fatal(err)
		}
		Activate(p)
		defer Deactivate()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire(SiteSpillReadErr)
		}
		return out
	}
	a, b, c := draw("7"), draw("7"), draw("8")
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.3 fired %d/200 times — not probabilistic", fires)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical fault sequences")
	}
}

func TestCounters(t *testing.T) {
	p := arm(t, "spill.read.err=every:2")
	for i := 0; i < 6; i++ {
		Fire(SiteSpillReadErr)
	}
	if got := p.Hits(SiteSpillReadErr); got != 6 {
		t.Fatalf("hits = %d, want 6", got)
	}
	if got := p.Fired(SiteSpillReadErr); got != 3 {
		t.Fatalf("fired = %d, want 3", got)
	}
}

func TestErrTyped(t *testing.T) {
	arm(t, "spill.write.err=on:1")
	err := Err(SiteSpillWriteErr, "write")
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("Err returned %T, want *InjectedError", err)
	}
	if inj.Site != SiteSpillWriteErr || !strings.Contains(inj.Error(), "write") {
		t.Fatalf("unexpected injected error: %v", inj)
	}
	if err := Err(SiteSpillWriteErr, "write"); err != nil {
		t.Fatalf("on:1 fired twice: %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	arm(t, "seed=5;spill.read.flip=on:1")
	buf := make([]byte, 32)
	ref := make([]byte, 32)
	if !FlipBit(SiteSpillFlip, buf) {
		t.Fatal("flip did not fire")
	}
	diff := 0
	for i := range buf {
		if buf[i] != ref[i] {
			for b := 0; b < 8; b++ {
				if (buf[i]^ref[i])&(1<<b) != 0 {
					diff++
				}
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
	if FlipBit(SiteSpillFlip, buf) {
		t.Fatal("on:1 flipped twice")
	}
}

func TestStallArg(t *testing.T) {
	arm(t, "transport.conn.stall@25=on:1")
	if d := StallFor(SiteConnStall); d != 25*time.Millisecond {
		t.Fatalf("stall = %v, want 25ms", d)
	}
	if d := StallFor(SiteConnStall); d != 0 {
		t.Fatalf("on:1 stalled twice (%v)", d)
	}
}

func TestCrashHandler(t *testing.T) {
	arm(t, "crash.round.end=on:2")
	var crashed []string
	prev := SetCrashHandler(func(site string) { crashed = append(crashed, site) })
	defer SetCrashHandler(prev)
	Crash(SiteCrashRoundEnd) // hit 1: no fire
	Crash(SiteCrashRoundEnd) // hit 2: fires
	if len(crashed) != 1 || crashed[0] != SiteCrashRoundEnd {
		t.Fatalf("crash handler saw %v, want one %s", crashed, SiteCrashRoundEnd)
	}
}

func TestArg(t *testing.T) {
	arm(t, "ckpt.write.torn@77=on:1")
	if v, ok := Arg(SiteCkptTorn); !ok || v != 77 {
		t.Fatalf("Arg = %d,%v want 77,true", v, ok)
	}
	if _, ok := Arg(SiteConnDrop); ok {
		t.Fatal("Arg for unarmed site")
	}
}
