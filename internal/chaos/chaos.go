// Package chaos is the unified, seeded fault-injection subsystem: one
// replayable Plan arming named failpoints across every seam of the stack
// — transport connection drops and stalls, spill-tier I/O errors and bit
// flips, checkpoint torn writes at chosen byte offsets, scheduler worker
// panics, and whole-process crash points. Production code queries its
// failpoints through package-level helpers that cost a single atomic
// load when no plan is armed, so a disarmed binary pays nothing.
//
// A plan is parsed from a compact spec string (the -chaos flag):
//
//	spec    := clause (';' clause)*
//	clause  := "seed=" uint64
//	         | site [ '@' int ] '=' trigger
//	trigger := float                 probabilistic: fire with probability p per hit
//	         | "on:" n               fire on exactly the n-th hit (1-based)
//	         | "every:" n            fire on every n-th hit
//	         | "after:" n            fire on every hit past the n-th
//
// Examples:
//
//	seed=42;spill.read.err=0.01;transport.conn.drop=every:50
//	ckpt.write.torn@128=on:1;crash.round.end=on:3
//
// Site names must come from Sites (unknown names are a parse error, so a
// typo cannot silently disarm an intended fault). The optional @int
// argument parameterises sites that take one — the byte offset of a torn
// checkpoint write, the millisecond duration of a connection stall.
//
// Every decision is a pure function of (plan seed, site name, per-site
// hit index), so a chaotic run replays exactly under the same plan and
// the same sequence of hits — which deterministic round arithmetic
// guarantees. Per-site hit and fire counters are registered in
// internal/obs when the plan is armed, making a chaotic run observable
// at /metrics like any other.
package chaos

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/fedzkt/fedzkt/internal/obs"
)

// Failpoint site names. Each names one seam production code arms via the
// package-level helpers; Parse rejects anything else.
const (
	// SiteConnDrop severs a transport connection mid-read/mid-write (the
	// session layer's resume tokens are what recovers it).
	SiteConnDrop = "transport.conn.drop"
	// SiteConnStall delays a transport read by the site argument in
	// milliseconds (default 10) — a network hiccup, not a death.
	SiteConnStall = "transport.conn.stall"
	// SiteSpillReadErr injects a transient I/O error into a spill-record
	// read (retried with backoff before degrading the member).
	SiteSpillReadErr = "spill.read.err"
	// SiteSpillWriteErr injects a transient I/O error into a spill-record
	// write.
	SiteSpillWriteErr = "spill.write.err"
	// SiteSpillFlip flips one deterministic bit in a spill record's bytes
	// after a successful read — silent media corruption, caught by the
	// per-record CRC.
	SiteSpillFlip = "spill.read.flip"
	// SiteCkptTorn tears an atomic checkpoint write: only the first
	// site-argument bytes of the payload (default 64) reach the file
	// before the write is cut short — the torn tail a crash between
	// write and fsync leaves behind, caught by the file CRC on load.
	SiteCkptTorn = "ckpt.write.torn"
	// SiteWorkerPanic panics a scheduler worker inside a device task
	// (recovered into a per-device failure, never a process death).
	SiteWorkerPanic = "sched.worker.panic"
	// Crash points: kill the whole process (via the crash handler) at a
	// well-defined coordinator boundary. Tests install a panicking
	// handler; the default handler exits with CrashExitCode.
	SiteCrashRoundStart = "crash.round.start"
	SiteCrashRoundEnd   = "crash.round.end"
	SiteCrashCkptPre    = "crash.ckpt.pre"
	SiteCrashCkptPost   = "crash.ckpt.post"
)

// Sites returns every known failpoint site name, sorted.
func Sites() []string {
	s := []string{
		SiteConnDrop, SiteConnStall,
		SiteSpillReadErr, SiteSpillWriteErr, SiteSpillFlip,
		SiteCkptTorn, SiteWorkerPanic,
		SiteCrashRoundStart, SiteCrashRoundEnd, SiteCrashCkptPre, SiteCrashCkptPost,
	}
	sort.Strings(s)
	return s
}

// CrashExitCode is the exit status of the default crash handler, distinct
// from ordinary failure (1) so a soak harness can tell an armed crash
// from a genuine error.
const CrashExitCode = 7

// triggerMode selects how a failpoint decides to fire.
type triggerMode uint8

const (
	modeProb triggerMode = iota
	modeOn
	modeEvery
	modeAfter
)

// Failpoint is one armed site of a plan.
type Failpoint struct {
	site string
	mode triggerMode
	n    uint64  // on/every/after parameter
	prob float64 // probabilistic parameter
	arg  int64   // optional site argument (offset, milliseconds)
	has  bool    // whether arg was given

	hits  atomic.Uint64
	fired obs.Counter
	seen  obs.Counter
}

// Plan is a parsed, seeded set of armed failpoints. Immutable after
// Parse; the hit counters inside are atomic.
type Plan struct {
	Seed   uint64
	points map[string]*Failpoint
	spec   string
}

// Parse builds a Plan from a spec string (grammar in the package
// comment). An empty spec yields a valid plan with no failpoints.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Seed: 1, points: make(map[string]*Failpoint), spec: spec}
	known := make(map[string]bool)
	for _, s := range Sites() {
		known[s] = true
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: clause %q is not key=value", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			p.Seed = seed
			continue
		}
		fp := &Failpoint{}
		site, argStr, hasArg := strings.Cut(key, "@")
		if !known[site] {
			return nil, fmt.Errorf("chaos: unknown failpoint site %q (known: %s)", site, strings.Join(Sites(), ", "))
		}
		if hasArg {
			arg, err := strconv.ParseInt(argStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad argument in %q: %v", key, err)
			}
			fp.arg, fp.has = arg, true
		}
		fp.site = site
		if _, dup := p.points[site]; dup {
			return nil, fmt.Errorf("chaos: site %q armed twice", site)
		}
		switch {
		case strings.HasPrefix(val, "on:"):
			fp.mode = modeOn
			if err := parseCount(val[3:], &fp.n); err != nil {
				return nil, fmt.Errorf("chaos: %q: %v", clause, err)
			}
		case strings.HasPrefix(val, "every:"):
			fp.mode = modeEvery
			if err := parseCount(val[6:], &fp.n); err != nil {
				return nil, fmt.Errorf("chaos: %q: %v", clause, err)
			}
		case strings.HasPrefix(val, "after:"):
			fp.mode = modeAfter
			if err := parseCount(val[6:], &fp.n); err != nil {
				return nil, fmt.Errorf("chaos: %q: %v", clause, err)
			}
		default:
			prob, err := strconv.ParseFloat(val, 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("chaos: trigger %q is neither a probability in [0,1] nor on:/every:/after:", val)
			}
			fp.mode, fp.prob = modeProb, prob
		}
		p.points[site] = fp
	}
	return p, nil
}

func parseCount(s string, out *uint64) error {
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return fmt.Errorf("bad count %q (want a positive integer)", s)
	}
	*out = n
	return nil
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string { return p.spec }

// Armed reports whether the plan arms the given site.
func (p *Plan) Armed(site string) bool {
	if p == nil {
		return false
	}
	_, ok := p.points[site]
	return ok
}

// Hits returns how many times the given site has been evaluated since the
// plan was parsed.
func (p *Plan) Hits(site string) uint64 {
	if fp, ok := p.points[site]; ok {
		return fp.hits.Load()
	}
	return 0
}

// Fired returns how many times the given site actually fired.
func (p *Plan) Fired(site string) uint64 {
	if fp, ok := p.points[site]; ok {
		return uint64(fp.fired.Load())
	}
	return 0
}

// decide evaluates one hit of fp: increments the hit index and applies
// the trigger. Pure in (seed, site, hit index) for the probabilistic
// mode, so a replayed run draws the same faults.
func (p *Plan) decide(fp *Failpoint) bool {
	hit := fp.hits.Add(1) // 1-based
	fp.seen.Inc()
	var fire bool
	switch fp.mode {
	case modeOn:
		fire = hit == fp.n
	case modeEvery:
		fire = hit%fp.n == 0
	case modeAfter:
		fire = hit > fp.n
	default:
		h := splitmix64(p.Seed ^ siteHash(fp.site) ^ hit*0x9E3779B97F4A7C15)
		fire = float64(h>>11)/(1<<53) < fp.prob
	}
	if fire {
		fp.fired.Inc()
	}
	return fire
}

// active is the armed plan; nil when chaos is off. Fire's fast path is a
// single atomic pointer load.
var active atomic.Pointer[Plan]

// Activate arms the plan process-wide and registers its per-site hit and
// fire counters in the default obs registry (metric names mangle dots to
// underscores). Passing nil disarms, as Deactivate does.
func Activate(p *Plan) {
	if p != nil {
		reg := obs.Default()
		for site, fp := range p.points {
			m := strings.NewReplacer(".", "_").Replace(site)
			reg.RegisterCounter("fedzkt_chaos_hits_total_"+m,
				"chaos failpoint evaluations at "+site, &fp.seen)
			reg.RegisterCounter("fedzkt_chaos_fired_total_"+m,
				"chaos faults injected at "+site, &fp.fired)
		}
	}
	active.Store(p)
}

// Deactivate disarms chaos process-wide.
func Deactivate() { active.Store(nil) }

// Active returns the armed plan, or nil.
func Active() *Plan { return active.Load() }

// Fire evaluates one hit of the named site against the armed plan:
// false (for free, bar one atomic load) when no plan is armed or the
// site is not in it.
func Fire(site string) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	fp, ok := p.points[site]
	if !ok {
		return false
	}
	return p.decide(fp)
}

// Arg returns the armed site's argument and whether one was given. Does
// not count as a hit.
func Arg(site string) (int64, bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	fp, ok := p.points[site]
	if !ok || !fp.has {
		return 0, false
	}
	return fp.arg, true
}

// InjectedError is the error a firing failpoint produces. Transient: I/O
// retry loops treat it like EIO and retry with backoff.
type InjectedError struct {
	Site string
	Op   string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault at %s", e.Op, e.Site)
}

// Err evaluates one hit of site and returns a typed *InjectedError when
// it fires, nil otherwise. op labels the failed operation in the message.
func Err(site, op string) error {
	if Fire(site) {
		return &InjectedError{Site: site, Op: op}
	}
	return nil
}

// FlipBit evaluates one hit of site and, when it fires, flips one
// deterministic bit of buf (derived from the plan seed and hit index).
// Reports whether it flipped. No-op on empty buffers.
func FlipBit(site string, buf []byte) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	fp, ok := p.points[site]
	if !ok {
		return false
	}
	if !p.decide(fp) || len(buf) == 0 {
		return false
	}
	h := splitmix64(p.Seed ^ siteHash(site) ^ fp.hits.Load())
	bit := h % uint64(len(buf)*8)
	buf[bit/8] ^= 1 << (bit % 8)
	return true
}

// StallFor evaluates one hit of site and returns how long to stall when
// it fires (the site argument in milliseconds, default 10 ms), or 0.
func StallFor(site string) time.Duration {
	p := active.Load()
	if p == nil {
		return 0
	}
	fp, ok := p.points[site]
	if !ok || !p.decide(fp) {
		return 0
	}
	ms := int64(10)
	if fp.has {
		ms = fp.arg
	}
	return time.Duration(ms) * time.Millisecond
}

// crashFn is what a firing crash point invokes. The default prints the
// site and exits with CrashExitCode — the hard process death the
// durability layer must survive. Tests install a panicking handler.
var crashFn atomic.Pointer[func(site string)]

func defaultCrash(site string) {
	fmt.Fprintf(os.Stderr, "chaos: crash point %s fired: exiting %d\n", site, CrashExitCode)
	os.Exit(CrashExitCode)
}

// SetCrashHandler replaces the crash-point handler, returning the
// previous one (pass nil to restore the default exit handler).
func SetCrashHandler(fn func(site string)) func(site string) {
	var prev func(site string)
	if old := crashFn.Load(); old != nil {
		prev = *old
	}
	if fn == nil {
		crashFn.Store(nil)
	} else {
		crashFn.Store(&fn)
	}
	return prev
}

// Crash evaluates one hit of the named crash point and, when it fires,
// invokes the crash handler — which does not return under the default
// handler (the process exits).
func Crash(site string) {
	if !Fire(site) {
		return
	}
	if fn := crashFn.Load(); fn != nil {
		(*fn)(site)
		return
	}
	defaultCrash(site)
}

// siteHash maps a site name to a stable 64-bit value (FNV-1a).
func siteHash(site string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(site))
	return h.Sum64()
}

// splitmix64 is the SplitMix64 finaliser, a statistically solid mixing
// hash (the same one internal/sched uses for failure injection).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
